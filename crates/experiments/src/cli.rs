//! Shared environment/argument handling for the experiment binaries.
//!
//! Every regenerator binary honours the same knobs; this module is the
//! single place they are parsed so the sixteen `main`s stop re-implementing
//! them:
//!
//! * `RLA_DURATION_SECS` — simulated seconds per run (default 3000, the
//!   paper's length; floor 60).
//! * `RLA_SEED` — base RNG seed (default 1).
//! * `RLA_JOBS` — worker threads for scenario sweeps (default: the
//!   machine's available parallelism).
//! * `RLA_RESULTS_DIR` — where run manifests go (default `results/`;
//!   handled by [`results_dir`]).
//! * `RLA_BENCH_BASELINE` — record/compare mode for the bench harness.
//! * `RLA_BENCH_GATE_PCT` — fail the engine bench if events/s regresses
//!   more than this percentage below the committed baseline.
//! * `RLA_TELEMETRY`, `RLA_TELEMETRY_SAMPLE_MS`, `RLA_TELEMETRY_FORMAT`,
//!   `RLA_TELEMETRY_DIR`, `RLA_TELEMETRY_FLIGHT_DEPTH` — the
//!   observability knobs, parsed into [`TelemetryOptions`] by
//!   [`telemetry_options`] (see `EXPERIMENTS.md` for the full story).
//! * `RLA_PROGRESS` — per-job heartbeat lines on stderr during sweeps
//!   (`1`/`on` to enable; default off so test output stays clean).
//! * `RLA_PROGRESS_FILE` — path of a JSONL heartbeat file: sweeps append
//!   one JSON object per completed job (case, seed, events/s, ETA),
//!   flushed per line so `rla_top` and `tail -f` follow it live.
//! * `RLA_PCAP`, `RLA_PCAP_DIR`, `RLA_PCAP_SPOOL` — packet-capture
//!   export: `RLA_PCAP=1` (or a snaplen in bytes) makes single-scenario
//!   runs write a classic libpcap file per run into `RLA_PCAP_DIR`
//!   (default: the results dir), parsed into [`PcapOptions`] by
//!   [`pcap_options`]. Requires `RLA_SHARDS=1` — tracers are
//!   single-threaded — and the combination is rejected at parse time.
//!   `RLA_PCAP_SPOOL=1` (or a chunk size in records) bounds the
//!   tracer's in-memory buffer by spilling sorted chunks to disk, so
//!   paper-length (3000 s) exports can't exhaust memory; the merged
//!   output is byte-identical to the unspooled file.
//! * `RLA_DIFF_THRESHOLD_PCT` — drift threshold for the `rla_diff`
//!   manifest-comparison tool (percent; the `--threshold` flag wins).
//! * `RLA_TCP_CC` — congestion controller for the background TCP flows
//!   (default `sack`; any name in the `tcp_sack` registry).
//! * `RLA_CHURN_RATE` — receiver leave/rejoin events per second for the
//!   dynamic-scenario binaries (default 0 — static membership).
//! * `RLA_BG_LOAD` — Poisson background short-flow arrivals per second
//!   (default 0 — no cross traffic).
//! * `RLA_EVENTS_FILE` — path to a JSON event schedule applied to each
//!   run (see EXPERIMENTS.md for the format).
//! * `RLA_SHARDS` — target execution-domain count *and* worker threads
//!   for the partitioned engine within one scenario run (default 1 —
//!   the cost-aware merge pass collapses the fine θ-partition into a
//!   single domain and the run dispatches down the classic sequential
//!   loop with zero exchange overhead). Digests are identical at every
//!   value; this knob trades wall-clock only.
//!
//! Any other variable in the `RLA_` namespace is rejected with the list
//! of valid knobs ([`enforce_known_env`]), so typos fail loudly.
//!
//! Binaries that run sweeps scale the budget down with
//! [`scaled_duration`]; trace-heavy single runs cap it with
//! [`capped_duration`].

use std::path::PathBuf;
use std::thread;

use netsim::time::SimDuration;
use telemetry::flight::DEFAULT_FLIGHT_DEPTH;
use telemetry::TimelineFormat;

use crate::scenario::GatewayKind;
use crate::tree::CongestionCase;

pub use crate::manifest::results_dir;

/// Every `RLA_*` environment knob the experiment binaries understand.
/// [`enforce_known_env`] rejects anything else in the `RLA_` namespace so
/// a typo (`RLA_DURATION=60`) fails loudly instead of silently running
/// the 3000 s default.
pub const KNOWN_ENV_VARS: [&str; 22] = [
    "RLA_DURATION_SECS",
    "RLA_SEED",
    "RLA_JOBS",
    "RLA_SHARDS",
    "RLA_TCP_CC",
    "RLA_RESULTS_DIR",
    "RLA_BENCH_BASELINE",
    "RLA_BENCH_GATE_PCT",
    "RLA_CHURN_RATE",
    "RLA_BG_LOAD",
    "RLA_EVENTS_FILE",
    "RLA_DIFF_THRESHOLD_PCT",
    "RLA_PROGRESS",
    "RLA_PROGRESS_FILE",
    "RLA_PCAP",
    "RLA_PCAP_DIR",
    "RLA_PCAP_SPOOL",
    "RLA_TELEMETRY",
    "RLA_TELEMETRY_SAMPLE_MS",
    "RLA_TELEMETRY_FORMAT",
    "RLA_TELEMETRY_DIR",
    "RLA_TELEMETRY_FLIGHT_DEPTH",
];

/// The subset of `names` that sit in the `RLA_` namespace without being a
/// recognized knob. Pure; the env-reading wrapper is
/// [`enforce_known_env`].
pub fn unknown_rla_vars_from(names: impl IntoIterator<Item = String>) -> Vec<String> {
    names
        .into_iter()
        .filter(|n| n.starts_with("RLA_") && !KNOWN_ENV_VARS.contains(&n.as_str()))
        .collect()
}

/// Reject unrecognized `RLA_*` environment variables. Called by every
/// knob getter, so each experiment binary fails fast on a typo with the
/// list of valid knobs instead of silently ignoring the override.
pub fn enforce_known_env() {
    let unknown = unknown_rla_vars_from(std::env::vars().map(|(k, _)| k));
    assert!(
        unknown.is_empty(),
        "unrecognized RLA_* environment variable(s): {}. Valid knobs: {}",
        unknown.join(", "),
        KNOWN_ENV_VARS.join(", ")
    );
}

/// Simulated duration for paper-table runs: `RLA_DURATION_SECS` if set,
/// else 3000 s (the paper's length), floored at 60 s.
pub fn run_duration() -> SimDuration {
    duration_or(SimDuration::from_secs(3000))
}

/// Simulated duration with an explicit default: `RLA_DURATION_SECS` if
/// set, else `default`, floored at 60 s either way.
pub fn duration_or(default: SimDuration) -> SimDuration {
    enforce_known_env();
    let secs = std::env::var("RLA_DURATION_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(default.as_secs_f64());
    SimDuration::from_secs_f64(secs.max(60.0))
}

/// [`run_duration`] divided by `divisor` with a floor — the budget rule
/// the multi-gateway sweeps use so a 10-run batch stays inside one
/// paper-run's budget.
pub fn scaled_duration(divisor: f64, floor_secs: f64) -> SimDuration {
    SimDuration::from_secs_f64((run_duration().as_secs_f64() / divisor).max(floor_secs))
}

/// [`run_duration`] capped at `cap_secs` — for trace-collecting runs
/// whose memory grows with simulated time.
pub fn capped_duration(cap_secs: f64) -> SimDuration {
    SimDuration::from_secs_f64(run_duration().as_secs_f64().min(cap_secs))
}

/// Base RNG seed, honouring `RLA_SEED`.
pub fn base_seed() -> u64 {
    enforce_known_env();
    std::env::var("RLA_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Whether sweep runners print per-job heartbeat lines to stderr
/// (`RLA_PROGRESS=1`/`on`). Off by default: the heartbeat is for humans
/// watching long sweeps, and CI logs should stay diffable.
pub fn progress_enabled() -> bool {
    enforce_known_env();
    matches!(
        std::env::var("RLA_PROGRESS").ok().as_deref(),
        Some("1") | Some("on") | Some("true")
    )
}

/// The JSONL heartbeat path from `RLA_PROGRESS_FILE`, if set (pure
/// parse; [`progress_sink`] opens it).
pub fn progress_file_from(get: impl Fn(&str) -> Option<String>) -> Option<PathBuf> {
    get("RLA_PROGRESS_FILE").map(PathBuf::from)
}

/// Open the `RLA_PROGRESS_FILE` heartbeat sink, creating parent
/// directories. `None` when the knob is unset; an unwritable path fails
/// loudly with the knob named — a sweep silently dropping its heartbeat
/// file would defeat the point of asking for one.
pub fn progress_sink() -> Option<std::fs::File> {
    enforce_known_env();
    let path = progress_file_from(|name| std::env::var(name).ok())?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                panic!("RLA_PROGRESS_FILE={path:?}: cannot create parent directory: {e}")
            });
        }
    }
    Some(std::fs::File::create(&path).unwrap_or_else(|e| {
        panic!("RLA_PROGRESS_FILE={path:?}: cannot create the heartbeat file: {e}")
    }))
}

/// Parsed `RLA_PCAP*` configuration. Like [`TelemetryOptions`], the
/// defaults mean "off": packet capture costs nothing unless asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapOptions {
    /// Write a capture file per single-scenario run (`RLA_PCAP=1`/`on`,
    /// or a snaplen in bytes which also enables).
    pub enabled: bool,
    /// Capture-record snap length in bytes (`RLA_PCAP=<bytes>`;
    /// default 128, floored at 64 by the writer so the synthetic
    /// headers always survive truncation).
    pub snaplen: u32,
    /// Directory capture files are written to (`RLA_PCAP_DIR`, default:
    /// the results dir).
    pub dir: PathBuf,
    /// Spill-to-disk chunk size in records (`RLA_PCAP_SPOOL=1`/`on` for
    /// the default chunk, or a record count; `None` — the default —
    /// buffers the whole capture in memory). Bounds the tracer's memory
    /// for paper-length exports; the merged file is byte-identical.
    pub spool_records: Option<usize>,
}

impl Default for PcapOptions {
    fn default() -> Self {
        PcapOptions {
            enabled: false,
            snaplen: telemetry::pcap::DEFAULT_SNAPLEN,
            dir: results_dir(),
            spool_records: None,
        }
    }
}

/// Parse the `RLA_PCAP*` knobs from the process environment.
pub fn pcap_options() -> PcapOptions {
    enforce_known_env();
    pcap_options_from(|name| std::env::var(name).ok())
}

/// [`pcap_options`] over an arbitrary variable source (pure, testable).
pub fn pcap_options_from(get: impl Fn(&str) -> Option<String>) -> PcapOptions {
    let mut opts = PcapOptions::default();
    if let Some(v) = get("RLA_PCAP") {
        match v.as_str() {
            "1" | "on" | "true" => opts.enabled = true,
            "0" | "off" | "" => opts.enabled = false,
            other => {
                let snaplen: u32 = other.parse().unwrap_or_else(|_| {
                    panic!("RLA_PCAP={other:?}: expected on|off|1|0 or a snaplen in bytes")
                });
                opts.enabled = true;
                opts.snaplen = snaplen;
            }
        }
    }
    if let Some(v) = get("RLA_PCAP_DIR") {
        opts.dir = PathBuf::from(v);
    }
    if let Some(v) = get("RLA_PCAP_SPOOL") {
        match v.as_str() {
            "1" | "on" | "true" => {
                opts.spool_records = Some(telemetry::pcap::DEFAULT_SPOOL_RECORDS)
            }
            "0" | "off" | "" => opts.spool_records = None,
            other => {
                let records: usize = other.parse().unwrap_or_else(|_| {
                    panic!(
                        "RLA_PCAP_SPOOL={other:?}: expected on|off|1|0 or a chunk size in records"
                    )
                });
                assert!(
                    records > 0,
                    "RLA_PCAP_SPOOL=0 disables spooling; a chunk needs at least one record"
                );
                opts.spool_records = Some(records);
            }
        }
    }
    // Tracers are single-threaded observers wired into shard 0; reject
    // the conflicting knob pair here, at parse time, instead of failing
    // later inside tracer installation.
    if opts.enabled {
        let shards = shards_from(&get);
        assert!(
            shards == 1,
            "RLA_PCAP with RLA_SHARDS={shards}: packet capture requires RLA_SHARDS=1 \
             (tracers are single-threaded); drop one of the two knobs"
        );
    }
    opts
}

/// Worker count for scenario sweeps: `RLA_JOBS` if set (floor 1),
/// otherwise the machine's available parallelism.
pub fn job_count() -> usize {
    enforce_known_env();
    std::env::var("RLA_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.max(1))
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Parsed `RLA_TELEMETRY*` configuration. All knobs default to
/// "telemetry off": the observability layer must cost nothing unless
/// asked for (the golden digests and the engine bench both run with this
/// struct at its defaults).
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetryOptions {
    /// Record per-flow timelines (`RLA_TELEMETRY=timeline`/`on`/`1`).
    pub timeline: bool,
    /// Sampling period for the timeline recorder
    /// (`RLA_TELEMETRY_SAMPLE_MS`, default 500 ms; 0 is rejected).
    pub sample_period: SimDuration,
    /// Timeline export format (`RLA_TELEMETRY_FORMAT=jsonl|csv`).
    pub format: TimelineFormat,
    /// Directory timeline files are written to (`RLA_TELEMETRY_DIR`,
    /// default: the results dir).
    pub dir: PathBuf,
    /// Flight-recorder ring depth per channel
    /// (`RLA_TELEMETRY_FLIGHT_DEPTH`, default 64).
    pub flight_depth: usize,
}

impl Default for TelemetryOptions {
    fn default() -> Self {
        TelemetryOptions {
            timeline: false,
            sample_period: SimDuration::from_millis(500),
            format: TimelineFormat::Jsonl,
            dir: results_dir(),
            flight_depth: DEFAULT_FLIGHT_DEPTH,
        }
    }
}

/// Parse the `RLA_TELEMETRY*` knobs from the process environment.
/// Unrecognized values fail loudly, like every other knob in this module.
pub fn telemetry_options() -> TelemetryOptions {
    enforce_known_env();
    telemetry_options_from(|name| std::env::var(name).ok())
}

/// [`telemetry_options`] over an arbitrary variable source — pure, so the
/// rejection paths are testable without mutating the process environment
/// (the same split as [`unknown_rla_vars_from`]).
pub fn telemetry_options_from(get: impl Fn(&str) -> Option<String>) -> TelemetryOptions {
    let mut opts = TelemetryOptions::default();
    if let Some(v) = get("RLA_TELEMETRY") {
        opts.timeline = match v.as_str() {
            "timeline" | "on" | "1" => true,
            "off" | "0" | "" => false,
            other => panic!("RLA_TELEMETRY={other:?}: expected timeline|on|1|off|0"),
        };
    }
    if let Some(v) = get("RLA_TELEMETRY_SAMPLE_MS") {
        let ms: u64 = v
            .parse()
            .unwrap_or_else(|_| panic!("RLA_TELEMETRY_SAMPLE_MS={v:?}: expected milliseconds"));
        // 0 would reach TimelineRecorder::new's `!period.is_zero()`
        // assertion and panic without naming the knob; reject it here
        // with the message the other knobs use.
        assert!(
            ms > 0,
            "RLA_TELEMETRY_SAMPLE_MS=0: the sampling period must be at least 1 ms"
        );
        opts.sample_period = SimDuration::from_millis(ms);
    }
    if let Some(v) = get("RLA_TELEMETRY_FORMAT") {
        opts.format = match v.as_str() {
            "jsonl" => TimelineFormat::Jsonl,
            "csv" => TimelineFormat::Csv,
            other => panic!("RLA_TELEMETRY_FORMAT={other:?}: expected jsonl|csv"),
        };
    }
    if let Some(v) = get("RLA_TELEMETRY_DIR") {
        opts.dir = PathBuf::from(v);
    }
    if let Some(v) = get("RLA_TELEMETRY_FLIGHT_DEPTH") {
        let depth: usize = v.parse().unwrap_or_else(|_| {
            panic!("RLA_TELEMETRY_FLIGHT_DEPTH={v:?}: expected a packet count")
        });
        opts.flight_depth = depth.max(1);
    }
    opts
}

/// The `rla_diff` drift threshold from `RLA_DIFF_THRESHOLD_PCT`, percent.
/// `None` when unset — the tool then uses its built-in default (or the
/// `--threshold` flag, which beats the environment either way).
pub fn diff_threshold_pct() -> Option<f64> {
    enforce_known_env();
    diff_threshold_pct_from(|name| std::env::var(name).ok())
}

/// [`diff_threshold_pct`] over an arbitrary variable source (pure).
pub fn diff_threshold_pct_from(get: impl Fn(&str) -> Option<String>) -> Option<f64> {
    get("RLA_DIFF_THRESHOLD_PCT").map(|v| {
        let pct: f64 = v
            .parse()
            .unwrap_or_else(|_| panic!("RLA_DIFF_THRESHOLD_PCT={v:?}: expected a percentage"));
        assert!(
            pct.is_finite() && pct >= 0.0,
            "RLA_DIFF_THRESHOLD_PCT={v:?}: expected a non-negative percentage"
        );
        pct
    })
}

/// The TCP congestion controller for the background flows:
/// `RLA_TCP_CC` looked up in the `tcp_sack` registry (default: the
/// paper's SACK).
pub fn tcp_cc() -> tcp_sack::CcVariant {
    enforce_known_env();
    tcp_cc_from(|name| std::env::var(name).ok())
}

/// [`tcp_cc`] over an arbitrary variable source (pure). A name missing
/// from the registry fails loudly listing every valid one, so the error
/// stays correct as controllers are added.
pub fn tcp_cc_from(get: impl Fn(&str) -> Option<String>) -> tcp_sack::CcVariant {
    get("RLA_TCP_CC").map_or_else(tcp_sack::CcVariant::sack, |v| {
        tcp_sack::CcVariant::parse(&v).unwrap_or_else(|| {
            panic!(
                "RLA_TCP_CC={v:?}: unknown congestion controller. Valid names: {}",
                tcp_sack::CcVariant::names().join(", ")
            )
        })
    })
}

/// Receiver churn rate for the dynamic-scenario binaries:
/// `RLA_CHURN_RATE` as leave/rejoin events per second (default 0 —
/// static membership).
pub fn churn_rate() -> f64 {
    enforce_known_env();
    churn_rate_from(|name| std::env::var(name).ok())
}

/// [`churn_rate`] over an arbitrary variable source (pure).
pub fn churn_rate_from(get: impl Fn(&str) -> Option<String>) -> f64 {
    rate_knob(&get, "RLA_CHURN_RATE", "leave/rejoin events per second")
}

/// Background-traffic intensity for the dynamic-scenario binaries:
/// `RLA_BG_LOAD` as Poisson short-flow arrivals per second (default 0 —
/// no cross traffic).
pub fn bg_load() -> f64 {
    enforce_known_env();
    bg_load_from(|name| std::env::var(name).ok())
}

/// [`bg_load`] over an arbitrary variable source (pure).
pub fn bg_load_from(get: impl Fn(&str) -> Option<String>) -> f64 {
    rate_knob(&get, "RLA_BG_LOAD", "flow arrivals per second")
}

/// Shared parser for the non-negative-rate knobs.
fn rate_knob(get: &impl Fn(&str) -> Option<String>, name: &str, what: &str) -> f64 {
    get(name).map_or(0.0, |v| {
        let rate: f64 = v
            .parse()
            .unwrap_or_else(|_| panic!("{name}={v:?}: expected {what}"));
        assert!(
            rate.is_finite() && rate >= 0.0,
            "{name}={v:?}: the rate must be non-negative and finite"
        );
        rate
    })
}

/// The event schedule from `RLA_EVENTS_FILE`, if set: a JSON array of
/// event objects (or an object with an `"events"` array — a manifest's
/// `events` section replays directly). Empty when unset. Malformed files
/// fail loudly with the offending event named.
pub fn events_file() -> Vec<crate::events::ScenarioEvent> {
    enforce_known_env();
    events_file_from(|name| std::env::var(name).ok())
}

/// [`events_file`] over an arbitrary variable source; reads the named
/// path from disk.
pub fn events_file_from(get: impl Fn(&str) -> Option<String>) -> Vec<crate::events::ScenarioEvent> {
    let Some(path) = get("RLA_EVENTS_FILE") else {
        return Vec::new();
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("RLA_EVENTS_FILE={path:?}: cannot read the file: {e}"));
    let json = crate::manifest::Json::parse(&text)
        .unwrap_or_else(|e| panic!("RLA_EVENTS_FILE={path:?}: invalid JSON: {e}"));
    crate::events::events_from_json(&json)
        .unwrap_or_else(|e| panic!("RLA_EVENTS_FILE={path:?}: {e}"))
}

/// The bench regression gate: `RLA_BENCH_GATE_PCT` as a percentage
/// (e.g. `5` = fail if events/s drops more than 5% below the committed
/// baseline). `None` when unset — the bench then only reports.
pub fn bench_gate_pct() -> Option<f64> {
    enforce_known_env();
    bench_gate_pct_from(|name| std::env::var(name).ok())
}

/// [`bench_gate_pct`] over an arbitrary variable source (pure). A
/// negative or non-finite gate would make the bench unfailable (any
/// regression beats "-5% below baseline", and NaN comparisons are always
/// false), so both are rejected with the knob named.
pub fn bench_gate_pct_from(get: impl Fn(&str) -> Option<String>) -> Option<f64> {
    get("RLA_BENCH_GATE_PCT").map(|v| {
        let pct: f64 = v
            .parse()
            .unwrap_or_else(|_| panic!("RLA_BENCH_GATE_PCT={v:?}: expected a percentage"));
        assert!(
            pct.is_finite() && pct >= 0.0,
            "RLA_BENCH_GATE_PCT={v:?}: expected a non-negative percentage"
        );
        pct
    })
}

/// Target execution-domain count and worker threads for the partitioned
/// engine within one scenario run: `RLA_SHARDS` (default 1 — the merge
/// pass collapses the fine θ-partition to a single domain and the run
/// takes the classic sequential loop). This knob never changes results:
/// the identity layer — per-region RNG streams and digest lanes — is a
/// pure function of the topology and the seed, and only the execution
/// grouping follows the target.
pub fn shards() -> usize {
    enforce_known_env();
    shards_from(|name| std::env::var(name).ok())
}

/// [`shards`] over an arbitrary variable source (pure). Zero is rejected
/// — "no workers" cannot run anything — as is non-numeric input, each
/// with the knob named.
pub fn shards_from(get: impl Fn(&str) -> Option<String>) -> usize {
    get("RLA_SHARDS").map_or(1, |v| {
        let n: usize = v
            .parse()
            .unwrap_or_else(|_| panic!("RLA_SHARDS={v:?}: expected a worker count"));
        assert!(n > 0, "RLA_SHARDS=0: at least one worker is required");
        n
    })
}

/// Parse a congestion-case argument (`"1"`, `"2"`, ... as in the paper's
/// table headers); `None` for unrecognized input.
pub fn parse_case(arg: &str) -> Option<CongestionCase> {
    match arg {
        "1" => Some(CongestionCase::Case1RootLink),
        "2" => Some(CongestionCase::Case2AllLevel3),
        "3" => Some(CongestionCase::Case3AllLeaves),
        "4" => Some(CongestionCase::Case4FiveLeaves),
        "5" => Some(CongestionCase::Case5OneLevel2),
        "10.2" | "fig10-l2" => Some(CongestionCase::Fig10AllLevel2),
        "10.3" | "fig10-l3" => Some(CongestionCase::Fig10AllLevel3),
        _ => None,
    }
}

/// Parse a gateway-kind argument (`"red"` / `"droptail"`/`"drop-tail"`);
/// `None` for unrecognized input.
pub fn parse_gateway(arg: &str) -> Option<GatewayKind> {
    match arg {
        "red" => Some(GatewayKind::Red),
        "droptail" | "drop-tail" => Some(GatewayKind::DropTail),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn durations_have_floors() {
        // The suite itself may run under RLA_DURATION_SECS (CI pins 60 s),
        // so derive the expectations from the same env the helpers read
        // instead of mutating the process environment.
        let env = std::env::var("RLA_DURATION_SECS")
            .ok()
            .and_then(|v| v.parse::<f64>().ok());
        let base = env.unwrap_or(3000.0).max(60.0);
        assert_eq!(run_duration(), SimDuration::from_secs_f64(base));
        assert_eq!(
            duration_or(SimDuration::from_secs(10)),
            SimDuration::from_secs_f64(env.unwrap_or(10.0).max(60.0)),
            "floor applies to explicit defaults too"
        );
        assert_eq!(
            scaled_duration(5.0, 120.0),
            SimDuration::from_secs_f64((base / 5.0).max(120.0))
        );
        assert_eq!(
            capped_duration(600.0),
            SimDuration::from_secs_f64(base.min(600.0))
        );
    }

    #[test]
    fn case_and_gateway_parsing() {
        assert_eq!(parse_case("3"), Some(CongestionCase::Case3AllLeaves));
        assert_eq!(parse_case("x"), None);
        assert_eq!(parse_gateway("red"), Some(GatewayKind::Red));
        assert_eq!(parse_gateway("drop-tail"), Some(GatewayKind::DropTail));
        assert_eq!(parse_gateway("fifo"), None);
    }

    #[test]
    fn seed_and_jobs_defaults() {
        assert_eq!(base_seed(), 1);
        assert!(job_count() >= 1);
    }

    #[test]
    fn telemetry_defaults_are_off_and_cheap() {
        // The suite may run with telemetry knobs unset (the normal CI
        // environment); defaults must leave everything disabled.
        if std::env::var("RLA_TELEMETRY").is_err() {
            let opts = telemetry_options();
            assert!(!opts.timeline);
            assert_eq!(opts.sample_period, SimDuration::from_millis(500));
            assert_eq!(opts.format, TimelineFormat::Jsonl);
            assert_eq!(opts.flight_depth, DEFAULT_FLIGHT_DEPTH);
        }
        if std::env::var("RLA_BENCH_GATE_PCT").is_err() {
            assert_eq!(bench_gate_pct(), None);
        }
    }

    #[test]
    fn telemetry_options_parse_from_a_variable_source() {
        let env = |pairs: &'static [(&'static str, &'static str)]| {
            move |name: &str| {
                pairs
                    .iter()
                    .find(|(k, _)| *k == name)
                    .map(|(_, v)| v.to_string())
            }
        };
        let opts = telemetry_options_from(env(&[
            ("RLA_TELEMETRY", "timeline"),
            ("RLA_TELEMETRY_SAMPLE_MS", "250"),
            ("RLA_TELEMETRY_FORMAT", "csv"),
        ]));
        assert!(opts.timeline);
        assert_eq!(opts.sample_period, SimDuration::from_millis(250));
        assert_eq!(opts.format, TimelineFormat::Csv);
        assert_eq!(
            diff_threshold_pct_from(env(&[("RLA_DIFF_THRESHOLD_PCT", "2.5")])),
            Some(2.5)
        );
        assert_eq!(diff_threshold_pct_from(env(&[])), None);
    }

    #[test]
    #[should_panic(expected = "at least 1 ms")]
    fn zero_sample_period_is_rejected_with_a_named_knob() {
        // Regression: RLA_TELEMETRY_SAMPLE_MS=0 used to reach
        // TimelineRecorder::new's bare `!period.is_zero()` assertion.
        telemetry_options_from(|name| (name == "RLA_TELEMETRY_SAMPLE_MS").then(|| "0".to_string()));
    }

    #[test]
    fn churn_and_bg_knobs_parse_with_zero_defaults() {
        let env = |pairs: &'static [(&'static str, &'static str)]| {
            move |name: &str| {
                pairs
                    .iter()
                    .find(|(k, _)| *k == name)
                    .map(|(_, v)| v.to_string())
            }
        };
        assert_eq!(churn_rate_from(env(&[])), 0.0);
        assert_eq!(bg_load_from(env(&[])), 0.0);
        assert_eq!(churn_rate_from(env(&[("RLA_CHURN_RATE", "0.25")])), 0.25);
        assert_eq!(bg_load_from(env(&[("RLA_BG_LOAD", "3")])), 3.0);
        assert!(events_file_from(env(&[])).is_empty());
    }

    #[test]
    fn tcp_cc_parses_registry_names_and_defaults_to_sack() {
        assert_eq!(tcp_cc_from(|_| None), tcp_sack::CcVariant::sack());
        for name in tcp_sack::CcVariant::names() {
            let cc = tcp_cc_from(move |k| (k == "RLA_TCP_CC").then(|| name.to_string()));
            assert_eq!(cc.name(), name);
        }
    }

    #[test]
    #[should_panic(expected = "sack, reno, cubic, bbr")]
    fn unknown_tcp_cc_is_rejected_listing_the_registry() {
        tcp_cc_from(|name| (name == "RLA_TCP_CC").then(|| "vegas".to_string()));
    }

    #[test]
    #[should_panic(expected = "RLA_CHURN_RATE")]
    fn negative_churn_rate_is_rejected_with_a_named_knob() {
        churn_rate_from(|name| (name == "RLA_CHURN_RATE").then(|| "-1".to_string()));
    }

    #[test]
    #[should_panic(expected = "RLA_BG_LOAD")]
    fn non_numeric_bg_load_is_rejected_with_a_named_knob() {
        bg_load_from(|name| (name == "RLA_BG_LOAD").then(|| "heavy".to_string()));
    }

    #[test]
    #[should_panic(expected = "cannot read the file")]
    fn missing_events_file_is_rejected_with_the_path() {
        events_file_from(|name| {
            (name == "RLA_EVENTS_FILE").then(|| "/nonexistent/events.json".to_string())
        });
    }

    #[test]
    fn events_file_round_trips_through_the_json_format() {
        use crate::events::{events_json, ScenarioEvent};
        let events = vec![
            ScenarioEvent::leave(25.0, 0, 2),
            ScenarioEvent::degrade(30.0, "L2.1", 0.03, Some(800)),
        ];
        let dir = std::env::temp_dir().join("rla_cli_events_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.json");
        std::fs::write(&path, events_json(&events).pretty()).unwrap();
        let path_str = path.to_str().unwrap().to_string();
        let loaded =
            events_file_from(move |name| (name == "RLA_EVENTS_FILE").then(|| path_str.clone()));
        assert_eq!(loaded, events);
    }

    #[test]
    #[should_panic(expected = "non-negative percentage")]
    fn negative_diff_threshold_is_rejected() {
        diff_threshold_pct_from(|name| {
            (name == "RLA_DIFF_THRESHOLD_PCT").then(|| "-3".to_string())
        });
    }

    #[test]
    #[should_panic(expected = "RLA_DIFF_THRESHOLD_PCT")]
    fn non_finite_diff_threshold_is_rejected() {
        diff_threshold_pct_from(|name| {
            (name == "RLA_DIFF_THRESHOLD_PCT").then(|| "NaN".to_string())
        });
    }

    #[test]
    fn bench_gate_parses_from_a_variable_source() {
        assert_eq!(bench_gate_pct_from(|_| None), None);
        assert_eq!(
            bench_gate_pct_from(|name| (name == "RLA_BENCH_GATE_PCT").then(|| "5".to_string())),
            Some(5.0)
        );
        assert_eq!(
            bench_gate_pct_from(|name| (name == "RLA_BENCH_GATE_PCT").then(|| "0".to_string())),
            Some(0.0),
            "zero is a legal (maximally strict) gate"
        );
    }

    #[test]
    #[should_panic(expected = "RLA_BENCH_GATE_PCT")]
    fn negative_bench_gate_is_rejected_with_a_named_knob() {
        // A negative gate would let every regression pass; see
        // bench_gate_pct_from.
        bench_gate_pct_from(|name| (name == "RLA_BENCH_GATE_PCT").then(|| "-5".to_string()));
    }

    #[test]
    #[should_panic(expected = "non-negative percentage")]
    fn non_finite_bench_gate_is_rejected() {
        bench_gate_pct_from(|name| (name == "RLA_BENCH_GATE_PCT").then(|| "inf".to_string()));
    }

    #[test]
    fn pcap_options_parse_from_a_variable_source() {
        let off = pcap_options_from(|_| None);
        assert!(!off.enabled);
        assert_eq!(off.snaplen, telemetry::pcap::DEFAULT_SNAPLEN);
        let on = pcap_options_from(|name| (name == "RLA_PCAP").then(|| "on".to_string()));
        assert!(on.enabled);
        let sized = pcap_options_from(|name| match name {
            "RLA_PCAP" => Some("256".to_string()),
            "RLA_PCAP_DIR" => Some("/tmp/caps".to_string()),
            _ => None,
        });
        assert!(sized.enabled, "a snaplen enables capture");
        assert_eq!(sized.snaplen, 256);
        assert_eq!(sized.dir, PathBuf::from("/tmp/caps"));
        // The default respects the knobs-unset CI environment.
        if std::env::var("RLA_PCAP").is_err() {
            assert!(!pcap_options().enabled);
        }
    }

    #[test]
    #[should_panic(expected = "RLA_PCAP=")]
    fn non_numeric_pcap_value_is_rejected_with_a_named_knob() {
        pcap_options_from(|name| (name == "RLA_PCAP").then(|| "yes please".to_string()));
    }

    #[test]
    fn pcap_spool_parses_the_chunk_size_and_defaults_off() {
        assert_eq!(pcap_options_from(|_| None).spool_records, None);
        let on = pcap_options_from(|name| match name {
            "RLA_PCAP" => Some("1".to_string()),
            "RLA_PCAP_SPOOL" => Some("on".to_string()),
            _ => None,
        });
        assert_eq!(
            on.spool_records,
            Some(telemetry::pcap::DEFAULT_SPOOL_RECORDS)
        );
        let sized = pcap_options_from(|name| match name {
            "RLA_PCAP" => Some("1".to_string()),
            "RLA_PCAP_SPOOL" => Some("4096".to_string()),
            _ => None,
        });
        assert_eq!(sized.spool_records, Some(4096));
        let off = pcap_options_from(|name| (name == "RLA_PCAP_SPOOL").then(|| "off".to_string()));
        assert_eq!(off.spool_records, None);
    }

    #[test]
    #[should_panic(expected = "RLA_PCAP_SPOOL=")]
    fn non_numeric_pcap_spool_is_rejected_with_a_named_knob() {
        pcap_options_from(|name| (name == "RLA_PCAP_SPOOL").then(|| "lots".to_string()));
    }

    #[test]
    #[should_panic(expected = "RLA_PCAP with RLA_SHARDS=4")]
    fn pcap_with_multiple_shards_is_rejected_at_parse_time() {
        pcap_options_from(|name| match name {
            "RLA_PCAP" => Some("1".to_string()),
            "RLA_SHARDS" => Some("4".to_string()),
            _ => None,
        });
    }

    #[test]
    fn pcap_with_one_shard_passes_the_parse_time_check() {
        let opts = pcap_options_from(|name| match name {
            "RLA_PCAP" => Some("1".to_string()),
            "RLA_SHARDS" => Some("1".to_string()),
            _ => None,
        });
        assert!(opts.enabled);
    }

    #[test]
    fn progress_file_parses_and_sink_defaults_to_none() {
        assert_eq!(progress_file_from(|_| None), None);
        assert_eq!(
            progress_file_from(|name| {
                (name == "RLA_PROGRESS_FILE").then(|| "/tmp/hb.jsonl".to_string())
            }),
            Some(PathBuf::from("/tmp/hb.jsonl"))
        );
        if std::env::var("RLA_PROGRESS_FILE").is_err() {
            assert!(progress_sink().is_none());
        }
    }

    #[test]
    fn shards_default_to_one_and_parse() {
        assert_eq!(shards_from(|_| None), 1);
        assert_eq!(
            shards_from(|name| (name == "RLA_SHARDS").then(|| "4".to_string())),
            4
        );
    }

    #[test]
    #[should_panic(expected = "RLA_SHARDS=0")]
    fn zero_shards_is_rejected_with_a_named_knob() {
        shards_from(|name| (name == "RLA_SHARDS").then(|| "0".to_string()));
    }

    #[test]
    #[should_panic(expected = "expected a worker count")]
    fn non_numeric_shards_is_rejected() {
        shards_from(|name| (name == "RLA_SHARDS").then(|| "many".to_string()));
    }

    #[test]
    fn unknown_rla_vars_are_flagged_and_known_ones_pass() {
        let names = |v: &[&str]| v.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        // Every documented knob is accepted; other namespaces are ignored.
        let mut ok = names(&KNOWN_ENV_VARS);
        ok.push("PATH".to_string());
        ok.push("CARGO_TARGET_DIR".to_string());
        assert!(unknown_rla_vars_from(ok).is_empty());
        // A typo in the RLA_ namespace is caught.
        assert_eq!(
            unknown_rla_vars_from(names(&["RLA_DURATION", "RLA_SEED", "HOME"])),
            vec!["RLA_DURATION".to_string()]
        );
        // The process environment itself must be clean — the getters call
        // enforce_known_env on every read.
        enforce_known_env();
    }
}
