//! Registry diffing between run manifests: the `rla_diff` engine.
//!
//! A drifted golden digest says *that* behaviour changed; the `registry`
//! section of the run manifest says *what* changed. This module loads two
//! manifests (see [`Json::parse`]), aligns their runs by
//! `(case, gateway, seed)`, aligns each run's registry by metric key, and
//! reports added/removed keys plus every metric whose relative change —
//! or absolute change, for metrics with a zero baseline — exceeds a
//! configurable threshold, sorted by magnitude.
//!
//! The `rla_diff` binary wraps this with table/JSON output and the
//! CI-friendly exit codes (0 = within threshold, 1 = drift, 2 = usage or
//! parse error); `tests/golden_digests.rs` runs the same diff on a digest
//! mismatch so the failure names the metrics that moved.

use std::collections::BTreeMap;
use std::fmt;
use std::fmt::Write as _;

use crate::manifest::{Json, JsonParseError};

/// Default drift threshold, percent, when neither the `--threshold` flag
/// nor `RLA_DIFF_THRESHOLD_PCT` overrides it.
pub const DEFAULT_THRESHOLD_PCT: f64 = 1.0;

/// Thresholds for deciding whether a metric's movement counts as drift.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffOptions {
    /// A metric with a nonzero baseline drifts when its relative change
    /// exceeds this percentage (strictly).
    pub threshold_pct: f64,
    /// Absolute noise floor: changes no larger than this never count,
    /// and a metric with a *zero* baseline (where relative change is
    /// undefined — typically a rarely-incremented counter) drifts exactly
    /// when its absolute change exceeds this.
    pub abs_epsilon: f64,
}

impl Default for DiffOptions {
    fn default() -> Self {
        DiffOptions {
            threshold_pct: DEFAULT_THRESHOLD_PCT,
            abs_epsilon: 0.0,
        }
    }
}

impl DiffOptions {
    /// Check both knobs are usable: finite and non-negative. A NaN
    /// threshold makes every comparison in [`MetricDelta::exceeds`]
    /// silently false (no drift ever reported, however far the registries
    /// diverge), and a negative one flags unchanged metrics — both are
    /// configuration mistakes worth an error that names the knob, not a
    /// clean-looking diff.
    pub fn validate(&self) -> Result<(), DiffError> {
        let knobs = [
            ("threshold_pct", self.threshold_pct),
            ("abs_epsilon", self.abs_epsilon),
        ];
        for (name, v) in knobs {
            if !v.is_finite() || v < 0.0 {
                return Err(DiffError::Options(format!(
                    "{name}={v}: expected a finite, non-negative number"
                )));
            }
        }
        Ok(())
    }
}

/// What went wrong while loading or aligning manifests.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffError {
    /// The input was not valid JSON.
    Parse(JsonParseError),
    /// The JSON parsed but is not a run manifest with registries.
    Schema(String),
    /// The [`DiffOptions`] thresholds are unusable (negative or
    /// non-finite) — see [`DiffOptions::validate`].
    Options(String),
}

impl fmt::Display for DiffError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiffError::Parse(e) => write!(f, "invalid JSON: {e}"),
            DiffError::Schema(msg) => write!(f, "not a run manifest: {msg}"),
            DiffError::Options(msg) => write!(f, "unusable thresholds: {msg}"),
        }
    }
}

impl std::error::Error for DiffError {}

impl From<JsonParseError> for DiffError {
    fn from(e: JsonParseError) -> Self {
        DiffError::Parse(e)
    }
}

/// One metric present in both registries whose value moved.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricDelta {
    /// The registry key (`chan.L3.4.retransmits`, `net.offered`, ...).
    pub key: String,
    /// Value in the baseline manifest.
    pub baseline: f64,
    /// Value in the candidate manifest.
    pub candidate: f64,
    /// `candidate - baseline`, signed.
    pub delta: f64,
    /// Signed relative change in percent (`100 * delta / |baseline|`);
    /// `None` when the baseline is zero.
    pub rel_pct: Option<f64>,
}

impl MetricDelta {
    fn new(key: &str, baseline: f64, candidate: f64) -> Self {
        let delta = candidate - baseline;
        let rel_pct = (baseline != 0.0).then(|| 100.0 * delta / baseline.abs());
        MetricDelta {
            key: key.to_string(),
            baseline,
            candidate,
            delta,
            rel_pct,
        }
    }

    /// Whether this movement exceeds the thresholds (see [`DiffOptions`]).
    pub fn exceeds(&self, opts: &DiffOptions) -> bool {
        if self.delta.abs() <= opts.abs_epsilon {
            return false;
        }
        match self.rel_pct {
            Some(rel) => rel.abs() > opts.threshold_pct,
            None => true, // zero baseline: already above the absolute floor
        }
    }

    /// Sort key: relative magnitude first (zero-baseline changes rank
    /// above any finite percentage), absolute magnitude as tiebreak.
    fn magnitude(&self) -> (f64, f64) {
        (
            self.rel_pct.map_or(f64::INFINITY, f64::abs),
            self.delta.abs(),
        )
    }
}

/// The diff of one aligned pair of runs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunDiff {
    /// `case <label> / <gateway> / seed <n>` — the alignment key.
    pub label: String,
    /// Keys only in the candidate's registry.
    pub added: Vec<String>,
    /// Keys only in the baseline's registry.
    pub removed: Vec<String>,
    /// Metrics over threshold, sorted by magnitude, largest first.
    pub drifted: Vec<MetricDelta>,
    /// Metrics that moved but stayed within threshold.
    pub within: usize,
    /// Metrics bit-identical in both registries.
    pub unchanged: usize,
}

impl RunDiff {
    /// Whether anything in this run counts as drift.
    pub fn has_drift(&self) -> bool {
        !self.added.is_empty() || !self.removed.is_empty() || !self.drifted.is_empty()
    }
}

/// The full comparison of two manifests.
#[derive(Debug, Clone, PartialEq)]
pub struct ManifestDiff {
    /// The thresholds the comparison used.
    pub options: DiffOptions,
    /// One entry per run present in both manifests, in baseline order.
    pub runs: Vec<RunDiff>,
    /// Alignment keys of runs only the baseline has.
    pub baseline_only_runs: Vec<String>,
    /// Alignment keys of runs only the candidate has.
    pub candidate_only_runs: Vec<String>,
}

impl ManifestDiff {
    /// Whether the candidate drifted from the baseline anywhere: a metric
    /// over threshold, a registry key appearing/disappearing, or a run
    /// present on only one side.
    pub fn has_drift(&self) -> bool {
        !self.baseline_only_runs.is_empty()
            || !self.candidate_only_runs.is_empty()
            || self.runs.iter().any(RunDiff::has_drift)
    }
}

/// Parse a manifest file's text ([`Json::parse`] with the error wrapped).
pub fn parse_manifest(text: &str) -> Result<Json, DiffError> {
    Ok(Json::parse(text)?)
}

/// The runs of a manifest. Scenario manifests carry a `runs` array;
/// anything else (e.g. an analysis-only manifest) is a schema error.
fn manifest_runs(manifest: &Json) -> Result<&[Json], DiffError> {
    manifest
        .get("runs")
        .and_then(Json::as_arr)
        .ok_or_else(|| DiffError::Schema("no \"runs\" array (analysis-only manifest?)".into()))
}

/// The alignment key of one run: case, gateway, seed — plus the TCP
/// congestion controller when the run records one, so a `cc_matrix`
/// manifest's runs (same case/gateway/seed under different controllers)
/// stay distinct. Positional when the fields are missing.
fn run_label(run: &Json, index: usize) -> String {
    match (
        run.get("case").and_then(Json::as_str),
        run.get("gateway").and_then(Json::as_str),
        run.get("seed").and_then(Json::as_u64),
    ) {
        (Some(case), Some(gw), Some(seed)) => match run.get("tcp_cc").and_then(Json::as_str) {
            Some(cc) => format!("case {case} / {gw} / {cc} / seed {seed}"),
            None => format!("case {case} / {gw} / seed {seed}"),
        },
        _ => format!("run[{index}]"),
    }
}

/// A run's registry as `key -> numeric value`. Missing registry section
/// (pre-telemetry manifests) or non-numeric entries are schema errors.
fn run_registry(run: &Json, label: &str) -> Result<BTreeMap<String, f64>, DiffError> {
    let fields = run
        .get("registry")
        .and_then(Json::as_obj)
        .ok_or_else(|| DiffError::Schema(format!("{label}: no \"registry\" object")))?;
    let mut map = BTreeMap::new();
    for (key, value) in fields {
        let v = value.as_f64().ok_or_else(|| {
            DiffError::Schema(format!("{label}: registry entry {key:?} is not a number"))
        })?;
        map.insert(key.clone(), v);
    }
    Ok(map)
}

/// Diff two registries (already extracted as key→value maps).
pub fn diff_registries(
    label: &str,
    baseline: &BTreeMap<String, f64>,
    candidate: &BTreeMap<String, f64>,
    opts: &DiffOptions,
) -> RunDiff {
    let added = candidate
        .keys()
        .filter(|k| !baseline.contains_key(*k))
        .cloned()
        .collect();
    let removed = baseline
        .keys()
        .filter(|k| !candidate.contains_key(*k))
        .cloned()
        .collect();
    let mut drifted = Vec::new();
    let mut within = 0;
    let mut unchanged = 0;
    for (key, &b) in baseline {
        let Some(&c) = candidate.get(key) else {
            continue;
        };
        if b == c {
            unchanged += 1;
            continue;
        }
        let delta = MetricDelta::new(key, b, c);
        if delta.exceeds(opts) {
            drifted.push(delta);
        } else {
            within += 1;
        }
    }
    drifted.sort_by(|a, b| {
        b.magnitude()
            .partial_cmp(&a.magnitude())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.key.cmp(&b.key))
    });
    RunDiff {
        label: label.to_string(),
        added,
        removed,
        drifted,
        within,
        unchanged,
    }
}

/// Compare two parsed manifests' registry sections. Runs are aligned by
/// `(case, gateway, seed)`; a run present on only one side is reported
/// (and counts as drift) rather than erroring, so comparing manifests
/// from different sweeps degrades gracefully.
pub fn diff_manifests(
    baseline: &Json,
    candidate: &Json,
    opts: &DiffOptions,
) -> Result<ManifestDiff, DiffError> {
    opts.validate()?;
    let base_runs = manifest_runs(baseline)?;
    let cand_runs = manifest_runs(candidate)?;
    let cand_by_label: BTreeMap<String, &Json> = cand_runs
        .iter()
        .enumerate()
        .map(|(i, run)| (run_label(run, i), run))
        .collect();

    let mut runs = Vec::new();
    let mut baseline_only = Vec::new();
    let mut matched = Vec::new();
    for (i, run) in base_runs.iter().enumerate() {
        let label = run_label(run, i);
        match cand_by_label.get(&label) {
            Some(cand_run) => {
                let b = run_registry(run, &label)?;
                let c = run_registry(cand_run, &label)?;
                runs.push(diff_registries(&label, &b, &c, opts));
                matched.push(label);
            }
            None => baseline_only.push(label),
        }
    }
    let candidate_only = cand_runs
        .iter()
        .enumerate()
        .map(|(i, run)| run_label(run, i))
        .filter(|l| !matched.contains(l))
        .collect();

    Ok(ManifestDiff {
        options: opts.clone(),
        runs,
        baseline_only_runs: baseline_only,
        candidate_only_runs: candidate_only,
    })
}

/// Shortest round-trippable rendering of a value (counters print without
/// a decimal point).
fn fmt_num(v: f64) -> String {
    format!("{v}")
}

/// Signed percentage cell, `-` when the baseline was zero.
fn fmt_rel(rel: Option<f64>) -> String {
    match rel {
        Some(r) => format!("{r:+.2}%"),
        None => "-".to_string(),
    }
}

/// Human-readable table of the diff, one block per run, in the plain
/// fixed-width style of the paper tables (`tables.rs`).
pub fn render_table(diff: &ManifestDiff) -> String {
    let mut out = String::new();
    for label in &diff.baseline_only_runs {
        let _ = writeln!(out, "{label}: only in baseline");
    }
    for label in &diff.candidate_only_runs {
        let _ = writeln!(out, "{label}: only in candidate");
    }
    for run in &diff.runs {
        let _ = writeln!(
            out,
            "{}: {} drifted, {} added, {} removed ({} within threshold, {} unchanged)",
            run.label,
            run.drifted.len(),
            run.added.len(),
            run.removed.len(),
            run.within,
            run.unchanged,
        );
        if !run.drifted.is_empty() {
            let _ = writeln!(
                out,
                "  {:<40}{:>16}{:>16}{:>14}{:>11}",
                "metric", "baseline", "candidate", "delta", "rel"
            );
            for d in &run.drifted {
                let _ = writeln!(
                    out,
                    "  {:<40}{:>16}{:>16}{:>14}{:>11}",
                    d.key,
                    fmt_num(d.baseline),
                    fmt_num(d.candidate),
                    format!("{:+}", d.delta),
                    fmt_rel(d.rel_pct),
                );
            }
        }
        for key in &run.added {
            let _ = writeln!(out, "  {key:<40} added in candidate");
        }
        for key in &run.removed {
            let _ = writeln!(out, "  {key:<40} removed in candidate");
        }
    }
    out
}

/// Machine-readable form of the diff, rendered by the binary's `--json`
/// mode: stable key order, one object per run.
pub fn to_json(diff: &ManifestDiff) -> Json {
    let runs = diff
        .runs
        .iter()
        .map(|run| {
            let drifted = run
                .drifted
                .iter()
                .map(|d| {
                    Json::obj(vec![
                        ("key", d.key.as_str().into()),
                        ("baseline", Json::Num(d.baseline)),
                        ("candidate", Json::Num(d.candidate)),
                        ("delta", Json::Num(d.delta)),
                        ("rel_pct", d.rel_pct.map_or(Json::Null, Json::Num)),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("run", run.label.as_str().into()),
                ("drifted", Json::Arr(drifted)),
                (
                    "added",
                    Json::Arr(run.added.iter().map(|k| k.as_str().into()).collect()),
                ),
                (
                    "removed",
                    Json::Arr(run.removed.iter().map(|k| k.as_str().into()).collect()),
                ),
                ("within_threshold", run.within.into()),
                ("unchanged", run.unchanged.into()),
            ])
        })
        .collect();
    Json::obj(vec![
        ("threshold_pct", Json::Num(diff.options.threshold_pct)),
        ("abs_epsilon", Json::Num(diff.options.abs_epsilon)),
        ("drift", diff.has_drift().into()),
        ("runs", Json::Arr(runs)),
        (
            "baseline_only_runs",
            Json::Arr(
                diff.baseline_only_runs
                    .iter()
                    .map(|l| l.as_str().into())
                    .collect(),
            ),
        ),
        (
            "candidate_only_runs",
            Json::Arr(
                diff.candidate_only_runs
                    .iter()
                    .map(|l| l.as_str().into())
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(registry: Vec<(&str, Json)>) -> Json {
        Json::obj(vec![
            ("binary", "test".into()),
            (
                "runs",
                Json::arr(vec![Json::obj(vec![
                    ("case", "L1".into()),
                    ("gateway", "red".into()),
                    ("seed", 1u64.into()),
                    ("registry", Json::obj(registry)),
                ])]),
            ),
        ])
    }

    fn the_run(diff: &ManifestDiff) -> &RunDiff {
        assert_eq!(diff.runs.len(), 1);
        &diff.runs[0]
    }

    #[test]
    fn identical_manifests_have_no_drift() {
        let m = manifest(vec![("net.offered", 100u64.into()), ("u", Json::Num(0.5))]);
        let d = diff_manifests(&m, &m, &DiffOptions::default()).unwrap();
        assert!(!d.has_drift());
        assert_eq!(the_run(&d).unchanged, 2);
        assert!(render_table(&d).contains("0 drifted"));
    }

    #[test]
    fn added_and_removed_keys_are_drift() {
        let b = manifest(vec![("net.offered", 100u64.into()), ("old", 1u64.into())]);
        let c = manifest(vec![("net.offered", 100u64.into()), ("new", 1u64.into())]);
        let d = diff_manifests(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.has_drift());
        let run = the_run(&d);
        assert_eq!(run.added, vec!["new".to_string()]);
        assert_eq!(run.removed, vec!["old".to_string()]);
        assert!(run.drifted.is_empty());
        let table = render_table(&d);
        assert!(table.contains("new") && table.contains("added"), "{table}");
    }

    #[test]
    fn negative_and_non_finite_thresholds_are_rejected_by_name() {
        let m = manifest(vec![("net.offered", 100u64.into())]);
        for (opts, knob) in [
            (
                DiffOptions {
                    threshold_pct: -1.0,
                    abs_epsilon: 0.0,
                },
                "threshold_pct=-1",
            ),
            (
                DiffOptions {
                    threshold_pct: f64::NAN,
                    abs_epsilon: 0.0,
                },
                "threshold_pct=NaN",
            ),
            (
                DiffOptions {
                    threshold_pct: 1.0,
                    abs_epsilon: f64::INFINITY,
                },
                "abs_epsilon=inf",
            ),
            (
                DiffOptions {
                    threshold_pct: 1.0,
                    abs_epsilon: -0.5,
                },
                "abs_epsilon=-0.5",
            ),
        ] {
            let err = diff_manifests(&m, &m, &opts).unwrap_err();
            let msg = err.to_string();
            assert!(msg.contains(knob), "{msg:?} should name {knob:?}");
            assert!(matches!(err, DiffError::Options(_)), "{err:?}");
        }
        // Zero for either knob is a legal (maximally sensitive) setting.
        let opts = DiffOptions {
            threshold_pct: 0.0,
            abs_epsilon: 0.0,
        };
        assert!(diff_manifests(&m, &m, &opts).is_ok());
    }

    #[test]
    fn threshold_boundary_is_strict() {
        // 100 -> 101 is exactly 1%; at threshold 1.0 that is *not* drift,
        // anything beyond is.
        let b = manifest(vec![("a", 100u64.into()), ("g", Json::Num(200.0))]);
        let c = manifest(vec![("a", 101u64.into()), ("g", Json::Num(197.9))]);
        let opts = DiffOptions {
            threshold_pct: 1.0,
            abs_epsilon: 0.0,
        };
        let d = diff_manifests(&b, &c, &opts).unwrap();
        let run = the_run(&d);
        assert_eq!(run.drifted.len(), 1, "{:?}", run.drifted);
        assert_eq!(run.drifted[0].key, "g");
        assert_eq!(run.within, 1);
        // Tighten the threshold and the 1% change drifts too.
        let opts = DiffOptions {
            threshold_pct: 0.5,
            abs_epsilon: 0.0,
        };
        let d = diff_manifests(&b, &c, &opts).unwrap();
        assert_eq!(the_run(&d).drifted.len(), 2);
    }

    #[test]
    fn zero_baseline_counters_use_the_absolute_threshold() {
        let b = manifest(vec![("timeouts", 0u64.into()), ("drops", 0u64.into())]);
        let c = manifest(vec![("timeouts", 2u64.into()), ("drops", 1u64.into())]);
        // Default: any change from a zero baseline is drift.
        let d = diff_manifests(&b, &c, &DiffOptions::default()).unwrap();
        let run = the_run(&d);
        assert_eq!(run.drifted.len(), 2);
        assert!(run.drifted[0].rel_pct.is_none());
        // Zero-baseline movements outrank finite relative changes.
        assert_eq!(run.drifted[0].key, "timeouts", "larger |delta| first");
        // An absolute floor of 1 keeps the +1 but flags the +2.
        let opts = DiffOptions {
            threshold_pct: 1.0,
            abs_epsilon: 1.0,
        };
        let d = diff_manifests(&b, &c, &opts).unwrap();
        let run = the_run(&d);
        assert_eq!(run.drifted.len(), 1);
        assert_eq!(run.drifted[0].key, "timeouts");
        assert_eq!(run.within, 1);
    }

    #[test]
    fn drifted_metrics_sort_by_relative_magnitude() {
        let b = manifest(vec![
            ("small", 10u64.into()),
            ("big", 1000u64.into()),
            ("fresh", 0u64.into()),
        ]);
        let c = manifest(vec![
            ("small", 20u64.into()), // +100%
            ("big", 1500u64.into()), // +50%
            ("fresh", 3u64.into()),  // zero baseline: first
        ]);
        let d = diff_manifests(&b, &c, &DiffOptions::default()).unwrap();
        let keys: Vec<&str> = the_run(&d).drifted.iter().map(|m| m.key.as_str()).collect();
        assert_eq!(keys, vec!["fresh", "small", "big"]);
    }

    #[test]
    fn unmatched_runs_are_reported_not_fatal() {
        let b = manifest(vec![("a", 1u64.into())]);
        let mut c = manifest(vec![("a", 1u64.into())]);
        // Change the candidate's gateway so the runs no longer align.
        let Json::Obj(fields) = &mut c else { panic!() };
        let Json::Arr(runs) = &mut fields[1].1 else {
            panic!()
        };
        let Json::Obj(run) = &mut runs[0] else {
            panic!()
        };
        run[1].1 = "drop-tail".into();
        let d = diff_manifests(&b, &c, &DiffOptions::default()).unwrap();
        assert!(d.has_drift());
        assert_eq!(d.runs.len(), 0);
        assert_eq!(d.baseline_only_runs, vec!["case L1 / red / seed 1"]);
        assert_eq!(d.candidate_only_runs, vec!["case L1 / drop-tail / seed 1"]);
    }

    #[test]
    fn runs_with_distinct_tcp_cc_do_not_collide() {
        // cc_matrix manifests carry several runs with the same
        // case/gateway/seed under different controllers; the label must
        // keep them apart or diffing silently compares sack to cubic.
        let with_cc = |cc: &str, v: u64| {
            Json::obj(vec![
                ("case", "L1".into()),
                ("gateway", "red".into()),
                ("tcp_cc", cc.into()),
                ("seed", 1u64.into()),
                ("registry", Json::obj(vec![("net.offered", v.into())])),
            ])
        };
        let m = |a: u64, b: u64| {
            Json::obj(vec![(
                "runs",
                Json::arr(vec![with_cc("sack", a), with_cc("cubic", b)]),
            )])
        };
        let d = diff_manifests(&m(100, 200), &m(100, 200), &DiffOptions::default()).unwrap();
        assert!(!d.has_drift());
        assert_eq!(d.runs.len(), 2);
        assert_eq!(d.runs[0].label, "case L1 / red / sack / seed 1");
        assert_eq!(d.runs[1].label, "case L1 / red / cubic / seed 1");
        // Only the cubic run moved; the sack run stays clean.
        let d = diff_manifests(&m(100, 200), &m(100, 300), &DiffOptions::default()).unwrap();
        assert!(!d.runs[0].has_drift());
        assert!(d.runs[1].has_drift());
    }

    #[test]
    fn schema_errors_name_the_problem() {
        let no_runs = Json::obj(vec![("binary", "eq1".into())]);
        let good = manifest(vec![]);
        assert!(matches!(
            diff_manifests(&no_runs, &good, &DiffOptions::default()),
            Err(DiffError::Schema(msg)) if msg.contains("runs")
        ));
        let no_registry = Json::obj(vec![(
            "runs",
            Json::arr(vec![Json::obj(vec![("case", "L1".into())])]),
        )]);
        assert!(matches!(
            diff_manifests(&no_registry, &no_registry, &DiffOptions::default()),
            Err(DiffError::Schema(msg)) if msg.contains("registry")
        ));
    }

    #[test]
    fn json_output_carries_the_verdict() {
        let b = manifest(vec![("a", 100u64.into())]);
        let c = manifest(vec![("a", 250u64.into())]);
        let d = diff_manifests(&b, &c, &DiffOptions::default()).unwrap();
        let j = to_json(&d);
        assert_eq!(j.get("drift"), Some(&Json::Bool(true)));
        let runs = j.get("runs").and_then(Json::as_arr).unwrap();
        let drifted = runs[0].get("drifted").and_then(Json::as_arr).unwrap();
        assert_eq!(drifted.len(), 1);
        assert_eq!(drifted[0].get("key").and_then(Json::as_str), Some("a"));
        assert_eq!(
            drifted[0].get("rel_pct").and_then(Json::as_f64),
            Some(150.0)
        );
        // The rendered JSON parses back.
        assert!(Json::parse(&j.pretty()).is_ok());
    }
}
