//! Plain-text table rendering in the layout of the paper's figures.

use crate::metrics::{BranchSignalStats, ScenarioResult};

/// Render a figure-7/9-style table from one result per case (columns) —
/// the RLA block, then the worst-TCP block, then the best-TCP block.
pub fn render_throughput_table(title: &str, results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    let header: Vec<String> = results
        .iter()
        .enumerate()
        .map(|(i, r)| format!("case {}: {}", i + 1, r.case_label))
        .collect();
    out.push_str(&format!("{:<26}", "most congested links"));
    for h in &header {
        out.push_str(&format!("{h:>22}"));
    }
    out.push('\n');

    let mut row = |label: &str, values: Vec<String>| {
        out.push_str(&format!("{label:<26}"));
        for v in values {
            out.push_str(&format!("{v:>22}"));
        }
        out.push('\n');
    };

    row(
        "RLA thrput (pkt/sec)",
        results
            .iter()
            .map(|r| format!("{:.1}", r.rla[0].throughput_pps))
            .collect(),
    );
    row(
        "RLA cwnd",
        results
            .iter()
            .map(|r| format!("{:.1}", r.rla[0].cwnd_avg))
            .collect(),
    );
    row(
        "RLA RTT (sec)",
        results
            .iter()
            .map(|r| format!("{:.3}", r.rla[0].rtt_avg))
            .collect(),
    );
    row(
        "RLA # cong signals",
        results
            .iter()
            .map(|r| format!("{}", r.rla[0].cong_signals))
            .collect(),
    );
    row(
        "RLA # wnd cut",
        results
            .iter()
            .map(|r| format!("{}", r.rla[0].window_cuts))
            .collect(),
    );
    row(
        "RLA # forced cut",
        results
            .iter()
            .map(|r| format!("{}", r.rla[0].forced_cuts))
            .collect(),
    );

    // A scenario with zero competing TCP flows has no worst/best row;
    // render `n/a` cells rather than refusing to print the RLA block.
    for (label, pick) in [("WTCP", true), ("BTCP", false)] {
        let rows: Vec<Option<&crate::metrics::TcpRow>> = results
            .iter()
            .map(|r| if pick { r.worst_tcp() } else { r.best_tcp() })
            .collect();
        let cells = |fmt: &dyn Fn(&crate::metrics::TcpRow) -> String| -> Vec<String> {
            rows.iter()
                .map(|t| t.map_or_else(|| "n/a".to_string(), fmt))
                .collect()
        };
        row(
            &format!("{label} thrput (pkt/sec)"),
            cells(&|t| format!("{:.1}", t.throughput_pps)),
        );
        row(
            &format!("{label} cwnd"),
            cells(&|t| format!("{:.1}", t.cwnd_avg)),
        );
        row(
            &format!("{label} RTT (sec)"),
            cells(&|t| format!("{:.3}", t.rtt_avg)),
        );
        row(
            &format!("{label} # wnd cut"),
            cells(&|t| format!("{}", t.window_cuts)),
        );
    }
    out
}

/// Render the figure-8 table: per-branch congestion-signal statistics for
/// the RLA and the competing TCP flows, split into more/less congested
/// groups when the case is unbalanced.
pub fn render_signal_table(results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<10}{:<18}{:>8}{:>8}{:>10}  |{:>8}{:>8}{:>10}\n",
        "case", "branches", "RLA wrst", "best", "avg", "TCP wrst", "best", "avg"
    ));
    for (i, r) in results.iter().enumerate() {
        let rla = &r.rla[0];
        let groups: Vec<(&str, Vec<usize>)> = if r.congested_leaves.is_empty() {
            vec![("all links", (0..r.tcp.len()).collect())]
        } else {
            let less: Vec<usize> = (0..r.tcp.len())
                .filter(|i| !r.congested_leaves.contains(i))
                .collect();
            vec![
                ("more congested", r.congested_leaves.clone()),
                ("less congested", less),
            ]
        };
        for (name, idxs) in groups {
            let rla_counts: Vec<u64> = idxs
                .iter()
                .map(|&j| rla.cong_signals_per_receiver[j])
                .collect();
            let tcp_counts: Vec<u64> = idxs.iter().map(|&j| r.tcp[j].window_cuts).collect();
            // Empty branch groups (e.g. zero TCP flows) render as n/a
            // instead of refusing to summarize the rest of the table.
            let cells = |s: Option<BranchSignalStats>| match s {
                Some(s) => (
                    s.worst.to_string(),
                    s.best.to_string(),
                    format!("{:.1}", s.average),
                ),
                None => ("n/a".to_string(), "n/a".to_string(), "n/a".to_string()),
            };
            let (rw, rb, ra) = cells(BranchSignalStats::from_counts(&rla_counts));
            let (tw, tb, ta) = cells(BranchSignalStats::from_counts(&tcp_counts));
            out.push_str(&format!(
                "{:<10}{:<18}{:>8}{:>8}{:>10}  |{:>8}{:>8}{:>10}\n",
                i + 1,
                name,
                rw,
                rb,
                ra,
                tw,
                tb,
                ta
            ));
        }
    }
    out
}

/// Render the figure-10 table (generalized RLA, unequal RTTs).
pub fn render_fig10_table(results: &[ScenarioResult]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6}{:<16}{:>10}{:>8}{:>8}{:>10}{:>8}{:>8} |{:>10}{:>8}{:>8}{:>8} |{:>10}{:>8}{:>8}{:>8}\n",
        "case", "links", "RLAthr", "cwnd", "RTT", "#cong", "#cut", "#forc", "WTCPthr", "cwnd",
        "RTT", "#cut", "BTCPthr", "cwnd", "RTT", "#cut"
    ));
    // Like the figure-7 table, zero-TCP scenarios get n/a cells in the
    // WTCP/BTCP blocks rather than a panic.
    let tcp_cells = |t: Option<&crate::metrics::TcpRow>| match t {
        Some(t) => (
            format!("{:.1}", t.throughput_pps),
            format!("{:.1}", t.cwnd_avg),
            format!("{:.3}", t.rtt_avg),
            t.window_cuts.to_string(),
        ),
        None => (
            "n/a".to_string(),
            "n/a".to_string(),
            "n/a".to_string(),
            "n/a".to_string(),
        ),
    };
    for (i, r) in results.iter().enumerate() {
        let a = &r.rla[0];
        let (wt, wc, wr, ww) = tcp_cells(r.worst_tcp());
        let (bt, bc, br, bw) = tcp_cells(r.best_tcp());
        out.push_str(&format!(
            "{:<6}{:<16}{:>10.1}{:>8.1}{:>8.3}{:>10}{:>8}{:>8} |{:>10}{:>8}{:>8}{:>8} |{:>10}{:>8}{:>8}{:>8}\n",
            i + 1,
            r.case_label,
            a.throughput_pps,
            a.cwnd_avg,
            a.rtt_avg,
            a.cong_signals,
            a.window_cuts,
            a.forced_cuts,
            wt,
            wc,
            wr,
            ww,
            bt,
            bc,
            br,
            bw
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{RlaRow, TcpRow};
    use crate::scenario::GatewayKind;

    fn fake_result() -> ScenarioResult {
        ScenarioResult {
            case_label: "L1".into(),
            gateway: GatewayKind::DropTail,
            congested_leaves: vec![],
            measured_secs: 2900.0,
            seed: 1,
            trace_digest: 0,
            trace_events: 0,
            events: vec![],
            registry: telemetry::Snapshot::default(),
            rla: vec![RlaRow {
                throughput_pps: 144.1,
                cwnd_avg: 33.9,
                rtt_avg: 0.234,
                cong_signals: 23247,
                cong_signals_per_receiver: vec![861; 27],
                window_cuts: 840,
                forced_cuts: 0,
                timeouts: 0,
                retransmits: 100,
            }],
            tcp: (0..27)
                .map(|i| TcpRow {
                    receiver_index: i,
                    throughput_pps: 80.0 + i as f64,
                    cwnd_avg: 20.0,
                    rtt_avg: 0.233,
                    window_cuts: 850,
                    timeouts: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn throughput_table_contains_all_blocks() {
        let t = render_throughput_table("figure 7", &[fake_result()]);
        assert!(t.contains("RLA thrput"));
        assert!(t.contains("144.1"));
        assert!(t.contains("WTCP thrput"));
        assert!(t.contains("80.0"));
        assert!(t.contains("BTCP thrput"));
        assert!(t.contains("106.0"));
    }

    #[test]
    fn signal_table_groups_branches() {
        let mut r = fake_result();
        r.congested_leaves = vec![0, 1, 2];
        let t = render_signal_table(&[r]);
        assert!(t.contains("more congested"));
        assert!(t.contains("less congested"));
    }

    #[test]
    fn fig10_table_renders() {
        let t = render_fig10_table(&[fake_result()]);
        assert!(t.contains("144.1"));
        assert!(t.contains("WTCP"));
    }

    #[test]
    fn zero_tcp_scenarios_render_na_cells_instead_of_panicking() {
        let mut r = fake_result();
        r.tcp.clear();
        r.rla[0].cong_signals_per_receiver.clear();

        let t = render_throughput_table("figure 7", &[r.clone()]);
        assert!(t.contains("RLA thrput"));
        assert!(t.contains("144.1"));
        assert!(t.contains("WTCP thrput"));
        assert!(t.contains("n/a"));

        let t = render_fig10_table(&[r.clone()]);
        assert!(t.contains("144.1"));
        assert!(t.contains("n/a"));

        let t = render_signal_table(&[r]);
        assert!(t.contains("all links"));
        assert!(t.contains("n/a"));
    }
}
