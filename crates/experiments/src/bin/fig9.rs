//! Figure 9: RLA sharing with TCP through **RED** gateways.
//!
//! Same five cases as figure 7 with RED (5/15, buffer 20) on every link
//! and no random processing overhead — RED removes the phase effect by
//! itself. Fairness should tighten toward absolute, most visibly in
//! case 1.

use experiments::prelude::*;
use experiments::tables::render_throughput_table;

fn main() {
    let duration = cli::run_duration();
    let scenarios: Vec<TreeScenario> = CongestionCase::FIGURE7_CASES
        .iter()
        .map(|&case| {
            ScenarioSpec::paper(case)
                .with_gateway(GatewayKind::Red)
                .with_duration(duration)
                .with_seed(cli::base_seed())
                .with_tcp_cc(cli::tcp_cc())
                .build()
        })
        .collect();
    eprintln!(
        "figure 9: 5 RED cases, {:.0} s each (RLA_DURATION_SECS to change)...",
        duration.as_secs_f64()
    );
    let results = run_parallel(scenarios);
    emit_scenario_manifest("fig9", duration, &results);
    println!(
        "{}",
        render_throughput_table("Figure 9 — simulation results with RED gateways", &results)
    );
    println!("paper reference (3000 s runs):");
    println!("  RLA  thrput: 118.0 / 103.7 /  88.3 / 141.0 / 209.2");
    println!("  WTCP thrput:  84.9 /  81.7 /  74.1 /  67.1 /  73.1");
    println!("  BTCP thrput:  86.8 /  86.1 /  74.0 / 166.2 / 576.4");
}
