//! Figure 7: RLA sharing with TCP through **drop-tail** gateways.
//!
//! Five congestion placements on the four-level tertiary tree, soft
//! bottleneck share normalized to 100 pkt/s. Prints the paper's table:
//! RLA throughput/cwnd/RTT/signals/cuts plus the worst and best competing
//! TCP. Honours `RLA_DURATION_SECS` (default 3000 s, the paper's
//! length) and `RLA_TCP_CC` (background TCP congestion controller).

use experiments::prelude::*;
use experiments::tables::render_throughput_table;

fn main() {
    let duration = cli::run_duration();
    let scenarios: Vec<TreeScenario> = CongestionCase::FIGURE7_CASES
        .iter()
        .map(|&case| {
            ScenarioSpec::paper(case)
                .with_duration(duration)
                .with_seed(cli::base_seed())
                .with_tcp_cc(cli::tcp_cc())
                .build()
        })
        .collect();
    eprintln!(
        "figure 7: 5 drop-tail cases, {:.0} s each (RLA_DURATION_SECS to change)...",
        duration.as_secs_f64()
    );
    let results = run_parallel(scenarios);
    emit_scenario_manifest("fig7", duration, &results);
    println!(
        "{}",
        render_throughput_table(
            "Figure 7 — simulation results with drop-tail gateways",
            &results
        )
    );
    println!("paper reference (3000 s runs):");
    println!("  RLA  thrput: 144.1 / 105.1 /  94.6 / 153.0 / 224.6");
    println!("  WTCP thrput:  81.8 /  83.0 /  79.2 /  68.2 /  74.5");
    println!("  BTCP thrput:  89.6 /  87.8 /  80.3 / 170.7 / 570.7");
}
