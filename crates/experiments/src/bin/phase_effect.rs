//! §3.1: the drop-tail **phase effect** and its elimination.
//!
//! Two identical TCP connections whose access links differ by a fraction
//! of the bottleneck service time share a drop-tail gateway. Without any
//! randomness the drop pattern locks onto the arrival phase and the split
//! can be grossly unfair even though the RTT difference is negligible.
//! Adding a uniform random processing time up to one bottleneck service
//! time (the paper's remedy) — or switching to RED — restores fairness.

use experiments::prelude::*;
use netsim::prelude::*;
use tcp_sack::{TcpConfig, TcpReceiver, TcpSender};

/// Run the two-flow contest; returns (throughput1, throughput2) in pkt/s
/// plus the trace digest.
fn contest(queue: &QueueConfig, overhead: SimDuration, seed: u64) -> (f64, f64, u64) {
    let mut engine = Engine::new(seed);
    let s1 = engine.add_node("s1");
    let s2 = engine.add_node("s2");
    let gw = engine.add_node("gw");
    let dst = engine.add_node("dst");
    // Bottleneck: 100 pkt/s => service time 10 ms for 1000 B packets.
    let bottleneck_bps = 800_000;
    let service = SimDuration::from_nanos(netsim::packet::tx_nanos(1000, bottleneck_bps));
    // Access links differ by a fraction of the service time: that tiny
    // offset is what the phase effect amplifies.
    engine.add_link(s1, gw, 100_000_000, SimDuration::from_millis(10), queue);
    engine.add_link(
        s2,
        gw,
        100_000_000,
        SimDuration::from_millis(10) + service / 4,
        queue,
    );
    engine.add_link(gw, dst, bottleneck_bps, SimDuration::from_millis(30), queue);
    let rx1 = engine.add_agent(dst, Box::new(TcpReceiver::new(40)));
    let rx2 = engine.add_agent(dst, Box::new(TcpReceiver::new(40)));
    let tx1 = engine.add_agent(s1, Box::new(TcpSender::new(rx1, TcpConfig::default())));
    let tx2 = engine.add_agent(s2, Box::new(TcpSender::new(rx2, TcpConfig::default())));
    engine.compute_routes();
    if !overhead.is_zero() {
        engine.set_send_overhead(tx1, overhead);
        engine.set_send_overhead(tx2, overhead);
    }
    engine.start_agent_at(tx1, SimTime::ZERO);
    engine.start_agent_at(tx2, SimTime::from_millis(503));
    let duration = cli::capped_duration(1000.0).as_secs_f64();
    engine.run_until(SimTime::from_secs_f64(duration));
    let d1 = engine
        .agent_as::<TcpReceiver>(rx1)
        .expect("rx")
        .stats
        .delivered;
    let d2 = engine
        .agent_as::<TcpReceiver>(rx2)
        .expect("rx")
        .stats
        .delivered;
    (
        d1 as f64 / duration,
        d2 as f64 / duration,
        engine.trace_digest().value(),
    )
}

fn main() {
    let service = SimDuration::from_nanos(netsim::packet::tx_nanos(1000, 800_000));
    println!("§3.1 — phase effect at a drop-tail gateway (two near-identical TCPs)");
    println!(
        "{:<44} {:>9} {:>9} {:>9}",
        "configuration", "flow 1", "flow 2", "max/min"
    );
    let mut rows: Vec<(&str, QueueConfig, SimDuration)> = vec![
        (
            "drop-tail, no randomness (phase-locked)",
            QueueConfig::paper_droptail(),
            SimDuration::ZERO,
        ),
        (
            "drop-tail + random overhead (paper's fix)",
            QueueConfig::paper_droptail(),
            service,
        ),
        (
            "RED gateway (no overhead needed)",
            QueueConfig::paper_red(),
            SimDuration::ZERO,
        ),
    ];
    let mut summary = Vec::new();
    let mut run_entries = Vec::new();
    for (label, queue, overhead) in rows.drain(..) {
        // Average the unfairness indicator over several seeds.
        let mut worst_ratio: f64 = 1.0;
        let mut t1_acc = 0.0;
        let mut t2_acc = 0.0;
        let mut digests = Vec::new();
        const SEEDS: u64 = 5;
        for seed in 0..SEEDS {
            let (t1, t2, d) = contest(&queue, overhead, cli::base_seed() + seed);
            worst_ratio = worst_ratio.max(t1.max(t2) / t1.min(t2).max(1e-9));
            t1_acc += t1;
            t2_acc += t2;
            digests.push(Json::from(format!("{d:016x}")));
        }
        println!(
            "{:<44} {:>9.1} {:>9.1} {:>9.2}",
            label,
            t1_acc / SEEDS as f64,
            t2_acc / SEEDS as f64,
            worst_ratio
        );
        run_entries.push(Json::obj(vec![
            ("configuration", label.into()),
            ("base_seed", cli::base_seed().into()),
            ("flow1_pps", (t1_acc / SEEDS as f64).into()),
            ("flow2_pps", (t2_acc / SEEDS as f64).into()),
            ("worst_ratio", worst_ratio.into()),
            ("trace_digests", Json::Arr(digests)),
        ]));
        summary.push((label, worst_ratio));
    }
    let manifest = Json::obj(vec![
        ("binary", "phase_effect".into()),
        ("runs", Json::Arr(run_entries)),
    ]);
    match experiments::manifest::write_manifest("phase_effect", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write phase_effect.manifest.json: {e}"),
    }
    println!("\n(flow rates in pkt/s; max/min is the worst split over 5 seeds)");
    println!(
        "expected shape: the phase-locked row is markedly less fair than the\n\
         random-overhead and RED rows — the reason the RLA adds randomness\n\
         with drop-tail gateways and needs none with RED."
    );
}
