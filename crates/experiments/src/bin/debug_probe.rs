//! Diagnostic probe: run one scenario with the telemetry timeline
//! recorder always on, write the cwnd/qlen time series to a file, and
//! dump RLA sender internals afterwards. Not part of the paper's
//! artifact set; kept for development triage.
//!
//! This is also the documented way to see the RLA sawtooth:
//!
//! ```text
//! cargo run --release -p experiments --bin debug_probe -- 1 droptail
//! ```
//!
//! writes `results/debug_probe.timeline.jsonl` (period/format/dir from
//! the `RLA_TELEMETRY*` knobs; see `EXPERIMENTS.md`).

use experiments::prelude::*;
use rla::RlaSender;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let case = args
        .get(1)
        .and_then(|s| cli::parse_case(s))
        .unwrap_or(CongestionCase::Case3AllLeaves);
    let gw = args
        .get(2)
        .and_then(|s| cli::parse_gateway(s))
        .unwrap_or(GatewayKind::DropTail);
    let scenario = ScenarioSpec::paper(case)
        .with_gateway(gw)
        .with_duration(SimDuration::from_secs(120))
        .with_seed(cli::base_seed())
        .build();
    let mut world = scenario.build();
    let sender = world.rla_senders[0];

    // The probe exists to look at time series, so the recorder is always
    // on here; RLA_TELEMETRY_SAMPLE_MS/FORMAT/DIR still apply. Samples
    // stream to the file as they are recorded (flushed per line), so
    // `rla_top results/debug_probe.timeline.jsonl` — or plain `tail -f`
    // — follows the run live.
    let mut opts = cli::telemetry_options();
    opts.timeline = true;
    let (r, rec) = world.run_with_telemetry_streamed(&scenario, &opts, "debug_probe");
    let path = rec
        .stream_path()
        .expect("streaming was enabled")
        .to_path_buf();
    println!(
        "timeline: {} ({} series, {} samples, period {:.3}s)",
        path.display(),
        rec.series().len(),
        rec.sample_count(),
        rec.period.as_secs_f64(),
    );

    // Sender-side view.
    {
        let now = world.engine.now();
        let s: &RlaSender = world.engine.agent_as(sender).unwrap();
        println!(
            "t={:>4.0}s cwnd={:>7.2} awnd={:>7.2} n_troubled={:>2} reach_all={:>7} high_seq={:>7} min_last_ack={:>7} delivered={:>7} signals={:>6} rcuts={:>5} fcuts={:>4} tmo={:>4} skip={:>5} rexmc={:>5} rexuc={:>5}",
            now.as_secs_f64(),
            s.cwnd(),
            s.awnd(),
            s.num_trouble_rcvr(now),
            s.max_reach_all(),
            s.stats.data_sent,
            s.min_last_ack(),
            s.stats.delivered,
            s.stats.cong_signals,
            s.stats.randomized_cuts,
            s.stats.forced_cuts,
            s.stats.timeouts,
            s.stats.skipped_rare,
            s.stats.retransmits_multicast,
            s.stats.retransmits_unicast,
        );
        println!("unknown_acks={}", s.stats.unknown_acks);
        for (id, cum, last) in s.receiver_states() {
            println!("  sender view {id}: cum={cum} last_ack_at={last}");
        }
    }
    // Receiver-side view.
    for (i, &rx) in world.rla_receivers[0].iter().enumerate() {
        let recv: &rla::McastReceiver = world.engine.agent_as(rx).unwrap();
        println!(
            "rcvr {i}: cum_ack={} arrivals={} delivered={} dups={}",
            recv.cum_ack(),
            recv.stats.arrivals,
            recv.stats.delivered,
            recv.stats.duplicates
        );
    }
    {
        let s: &RlaSender = world.engine.agent_as(sender).unwrap();
        println!(
            "early_rexmt={} rexmc={} data={}",
            s.stats.early_retransmits, s.stats.retransmits_multicast, s.stats.data_sent
        );
        let mut dups = 0u64;
        let mut arrivals = 0u64;
        for &rx in &world.rla_receivers[0] {
            let recv: &rla::McastReceiver = world.engine.agent_as(rx).unwrap();
            dups += recv.stats.duplicates;
            arrivals += recv.stats.arrivals;
        }
        println!(
            "receiver dups={} arrivals={} dups/rexmc={:.1}",
            dups,
            arrivals,
            dups as f64 / s.stats.retransmits_multicast.max(1) as f64
        );
        let mut leaf_drops = 0u64;
        for &ch in &world.tree.l4_down {
            leaf_drops += world.engine.world().channel(ch).stats.queue_drops();
        }
        println!("total leaf-channel drops (tcp+rla) = {leaf_drops}");
    }
    // Any channel that dropped packets.
    for i in 0..world.engine.world().channel_count() {
        let ch = netsim::id::ChannelId::from(i);
        let c = world.engine.world().channel(ch);
        if c.stats.queue_drops() > 0 {
            println!(
                "{ch:?} {}->{}: offered={} tx={} drops={} maxq={}",
                c.from,
                c.to,
                c.stats.offered,
                c.stats.transmitted,
                c.stats.queue_drops(),
                c.stats.max_qlen
            );
        }
    }
    experiments::emit_scenario_manifest("debug_probe", scenario.duration, std::slice::from_ref(&r));
    // A scenario without competing TCP flows has no worst/best row.
    let tcp_pps = |t: Option<&experiments::metrics::TcpRow>| {
        t.map_or("n/a".to_string(), |t| format!("{:.1}", t.throughput_pps))
    };
    println!(
        "RLA {:.1} pkt/s | WTCP {} | BTCP {} | avgTCP {:.1}",
        r.rla[0].throughput_pps,
        tcp_pps(r.worst_tcp()),
        tcp_pps(r.best_tcp()),
        r.avg_tcp_throughput()
    );
}
