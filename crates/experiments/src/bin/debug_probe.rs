//! Diagnostic probe: periodic dump of RLA sender internals in a scenario.
//! Not part of the paper's artifact set; kept for development triage.

use experiments::prelude::*;
use rla::RlaSender;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let case = args
        .get(1)
        .and_then(|s| cli::parse_case(s))
        .unwrap_or(CongestionCase::Case3AllLeaves);
    let gw = args
        .get(2)
        .and_then(|s| cli::parse_gateway(s))
        .unwrap_or(GatewayKind::DropTail);
    let scenario = ScenarioSpec::paper(case)
        .with_gateway(gw)
        .with_duration(SimDuration::from_secs(120))
        .with_seed(cli::base_seed())
        .build();
    let mut world = scenario.build();
    let sender = world.rla_senders[0];
    for step in 1..=24 {
        world.engine.run_until(SimTime::from_secs(step * 5));
        let now = world.engine.now();
        let s: &RlaSender = world.engine.agent_as(sender).unwrap();
        println!(
            "t={:>4}s cwnd={:>7.2} awnd={:>7.2} n_troubled={:>2} reach_all={:>7} high_seq={:>7} min_last_ack={:>7} delivered={:>7} signals={:>6} rcuts={:>5} fcuts={:>4} tmo={:>4} skip={:>5} rexmc={:>5} rexuc={:>5}",
            step * 5,
            s.cwnd(),
            s.awnd(),
            s.num_trouble_rcvr(now),
            s.max_reach_all(),
            s.stats.data_sent,
            s.min_last_ack(),
            s.stats.delivered,
            s.stats.cong_signals,
            s.stats.randomized_cuts,
            s.stats.forced_cuts,
            s.stats.timeouts,
            s.stats.skipped_rare,
            s.stats.retransmits_multicast,
            s.stats.retransmits_unicast,
        );
    }
    // Receiver-side view.
    for (i, &rx) in world.rla_receivers[0].iter().enumerate() {
        let r: &rla::McastReceiver = world.engine.agent_as(rx).unwrap();
        println!(
            "rcvr {i}: cum_ack={} arrivals={} delivered={} dups={}",
            r.cum_ack(),
            r.stats.arrivals,
            r.stats.delivered,
            r.stats.duplicates
        );
    }
    {
        let s: &RlaSender = world.engine.agent_as(sender).unwrap();
        println!("unknown_acks={}", s.stats.unknown_acks);
        for (id, cum, last) in s.receiver_states() {
            println!("  sender view {id}: cum={cum} last_ack_at={last}");
        }
    }
    {
        let s: &RlaSender = world.engine.agent_as(sender).unwrap();
        println!(
            "early_rexmt={} rexmc={} data={}",
            s.stats.early_retransmits, s.stats.retransmits_multicast, s.stats.data_sent
        );
        let mut dups = 0u64;
        let mut arrivals = 0u64;
        for &rx in &world.rla_receivers[0] {
            let r: &rla::McastReceiver = world.engine.agent_as(rx).unwrap();
            dups += r.stats.duplicates;
            arrivals += r.stats.arrivals;
        }
        println!(
            "receiver dups={} arrivals={} dups/rexmc={:.1}",
            dups,
            arrivals,
            dups as f64 / s.stats.retransmits_multicast.max(1) as f64
        );
        let mut leaf_drops = 0u64;
        for &ch in &world.tree.l4_down {
            leaf_drops += world.engine.world().channel(ch).stats.queue_drops();
        }
        println!("total leaf-channel drops (tcp+rla) = {leaf_drops}");
    }
    // Any channel that dropped packets.
    for i in 0..world.engine.world().channel_count() {
        let ch = netsim::id::ChannelId::from(i);
        let c = world.engine.world().channel(ch);
        if c.stats.queue_drops() > 0 {
            println!(
                "{ch:?} {}->{}: offered={} tx={} drops={} maxq={}",
                c.from,
                c.to,
                c.stats.offered,
                c.stats.transmitted,
                c.stats.queue_drops(),
                c.stats.max_qlen
            );
        }
    }
    let r = world.collect(&scenario);
    experiments::emit_scenario_manifest("debug_probe", scenario.duration, std::slice::from_ref(&r));
    println!(
        "RLA {:.1} pkt/s | WTCP {:.1} | BTCP {:.1} | avgTCP {:.1}",
        r.rla[0].throughput_pps,
        r.worst_tcp().unwrap().throughput_pps,
        r.best_tcp().unwrap().throughput_pps,
        r.avg_tcp_throughput()
    );
}
