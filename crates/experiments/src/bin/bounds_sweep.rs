//! How the essential-fairness ratio scales with the receiver count.
//!
//! §4.3's remark: with one *much* more congested receiver and `n−1`
//! receivers just congested enough to stay in the troubled set, the RLA's
//! throughput approaches the upper bound — `O(√n)` over the worst TCP
//! with RED-like uniform losses, `O(n)` with drop-tail. This sweep
//! measures the ratio on a star with Bernoulli losses (the §4 independent
//! loss model): the worst branch at `p = 2%`, the rest at `p = 0.2%`
//! (inside the η = 20 margin, so they count as troubled).

use experiments::prelude::*;
use experiments::star::{build_star, BranchSpec};
use netsim::prelude::*;
use rla::{McastReceiver, RlaConfig, RlaSender};
use tcp_sack::{TcpConfig, TcpReceiver, TcpSender};

/// Run one (n, seed) point; returns (λ_RLA, λ_TCP on the worst branch,
/// average RLA window, trace digest).
fn point(n: usize, seed: u64, secs: u64) -> (f64, f64, f64, u64) {
    let mut engine = Engine::new(seed);
    let queue = QueueConfig::DropTail { limit: 1000 }; // losses come from the injectors
    let mut branches =
        vec![BranchSpec::new(80_000_000, SimDuration::from_millis(30)).with_loss(0.002); n];
    branches[0].drop_prob = 0.02; // the soft bottleneck
    let star = build_star(&mut engine, &branches, &queue);

    // The competing TCP on the worst branch.
    let tcp_rx = engine.add_agent(star.leaves[0], Box::new(TcpReceiver::new(40)));
    engine.set_send_overhead(tcp_rx, SimDuration::from_millis(1));
    let tcp_tx = engine.add_agent(
        star.root,
        Box::new(TcpSender::new(tcp_rx, TcpConfig::default())),
    );

    let group = engine.new_group();
    for &leaf in &star.leaves {
        let rx = engine.add_agent(leaf, Box::new(McastReceiver::new(40)));
        engine.set_send_overhead(rx, SimDuration::from_millis(1));
        engine.join_group(group, rx);
    }
    let rla_tx = engine.add_agent(
        star.root,
        Box::new(RlaSender::new(group, RlaConfig::default())),
    );
    engine.compute_routes();
    engine.build_group_tree(group, star.root);
    engine.start_agent_at(tcp_tx, SimTime::ZERO);
    engine.start_agent_at(rla_tx, SimTime::from_millis(501));

    let warmup = secs / 5;
    engine.run_until(SimTime::from_secs(warmup));
    let w = engine.now();
    engine
        .agent_as_mut::<RlaSender>(rla_tx)
        .expect("rla")
        .reset_stats(w);
    engine
        .agent_as_mut::<TcpSender>(tcp_tx)
        .expect("tcp")
        .reset_stats(w);
    engine.run_until(SimTime::from_secs(secs));
    let now = engine.now();
    let rla = engine.agent_as::<RlaSender>(rla_tx).expect("rla");
    let tcp = engine.agent_as::<TcpSender>(tcp_tx).expect("tcp");
    (
        rla.stats.throughput_pps(now),
        tcp.stats.throughput_pps(now),
        rla.stats.cwnd_avg.average(now),
        engine.trace_digest().value(),
    )
}

fn main() {
    let secs = cli::scaled_duration(5.0, 200.0).as_secs_f64() as u64;
    println!("Essential-fairness ratio vs receiver count (unbalanced congestion)");
    println!("worst branch p = 2%, others p = 0.2% (troubled within η = 20)");
    println!(
        "{:>4} {:>10} {:>10} {:>8} {:>8} {:>10} {:>12}",
        "n", "λ_RLA", "λ_WTCP", "ratio", "cwnd", "√(3n)", "2n (Thm II)"
    );
    let mut run_entries = Vec::new();
    for &n in &[2usize, 4, 9, 16, 27] {
        // Average a few seeds; each point is cheap (fault-injected, no
        // queue dynamics).
        let mut rla = 0.0;
        let mut tcp = 0.0;
        let mut cwnd = 0.0;
        let mut digests = Vec::new();
        const SEEDS: u64 = 3;
        for s in 0..SEEDS {
            let (a, b, w, d) = point(n, cli::base_seed() + s, secs);
            rla += a;
            tcp += b;
            cwnd += w;
            digests.push(Json::from(format!("{d:016x}")));
        }
        rla /= SEEDS as f64;
        tcp /= SEEDS as f64;
        cwnd /= SEEDS as f64;
        println!(
            "{:>4} {:>10.1} {:>10.1} {:>8.2} {:>8.1} {:>10.2} {:>12.1}",
            n,
            rla,
            tcp,
            rla / tcp,
            cwnd,
            (3.0 * n as f64).sqrt(),
            2.0 * n as f64
        );
        run_entries.push(Json::obj(vec![
            ("receivers", n.into()),
            ("base_seed", cli::base_seed().into()),
            ("rla_pps", rla.into()),
            ("wtcp_pps", tcp.into()),
            ("ratio", (rla / tcp).into()),
            ("trace_digests", Json::Arr(digests)),
        ]));
    }
    let manifest = Json::obj(vec![
        ("binary", "bounds_sweep".into()),
        ("duration_secs", (secs as f64).into()),
        ("runs", Json::Arr(run_entries)),
    ]);
    match experiments::manifest::write_manifest("bounds_sweep", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write bounds_sweep.manifest.json: {e}"),
    }
    println!(
        "\nexpected shape: the ratio grows with n (the paper's 'serves more\n\
         receivers' dividend) but stays far below the 2n guarantee — the\n\
         measured band is much tighter than the worst-case theorem."
    );
}
