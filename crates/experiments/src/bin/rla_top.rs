//! `rla_top` — a live operator dashboard for running experiments.
//!
//! Tails `.timeline.jsonl` files (from `RLA_TELEMETRY=timeline` runs or
//! the always-on `debug_probe` stream) and the `RLA_PROGRESS_FILE`
//! sweep-heartbeat file, folding every appended line into a
//! [`telemetry::Dashboard`]: per-flow cwnd/ssthresh/srtt and
//! per-channel qlen/red_avg with sparklines over the recent window,
//! plus per-job sweep progress and an ETA. Rendering is hand-rolled
//! ANSI with a double-buffered diff redraw ([`telemetry::DiffScreen`])
//! — no curses dependency, no flicker.
//!
//! ```text
//! # terminal 1: a streaming run
//! cargo run --release -p experiments --bin debug_probe -- 5 red
//! # terminal 2: watch it live
//! cargo run --release -p experiments --bin rla_top
//! ```
//!
//! Usage: `rla_top [--once] [--interval-ms N] [PATH...]`
//!
//! * `PATH...` — explicit JSONL files to follow. Default: every
//!   `*.timeline.jsonl` under the telemetry directory
//!   (`RLA_TELEMETRY_DIR`, falling back to the results dir), plus the
//!   `RLA_PROGRESS_FILE` path when that knob is set.
//! * `--once` — headless snapshot: read whatever the files hold now,
//!   print one plain-text frame to stdout (no escape codes) and exit.
//!   This is what CI and the tests drive.
//! * `--interval-ms N` — polling period in live mode (default 250 ms).
//!
//! Files that do not exist yet are fine — the tailer reports them as
//! empty and picks them up when they appear, so `rla_top` can be
//! started before the run it watches.

use std::io::Write;
use std::path::PathBuf;
use std::time::Duration;

use experiments::cli;
use telemetry::{Dashboard, DiffScreen, JsonlTail};

fn usage() -> ! {
    eprintln!("usage: rla_top [--once] [--interval-ms N] [PATH...]");
    std::process::exit(2);
}

/// The default watch set: every timeline file in the telemetry
/// directory plus the heartbeat file, when configured.
fn default_paths() -> Vec<PathBuf> {
    let mut paths = Vec::new();
    let dir = cli::telemetry_options().dir;
    if let Ok(entries) = std::fs::read_dir(&dir) {
        for entry in entries.flatten() {
            let p = entry.path();
            if p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".timeline.jsonl"))
            {
                paths.push(p);
            }
        }
    }
    paths.sort();
    if let Some(hb) = cli::progress_file_from(|name| std::env::var(name).ok()) {
        paths.push(hb);
    }
    paths
}

fn main() {
    let mut once = false;
    let mut interval = Duration::from_millis(250);
    let mut paths: Vec<PathBuf> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--once" => once = true,
            "--interval-ms" => {
                let ms: u64 = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
                interval = Duration::from_millis(ms.max(10));
            }
            "--help" | "-h" => usage(),
            flag if flag.starts_with('-') => usage(),
            path => paths.push(PathBuf::from(path)),
        }
    }
    if paths.is_empty() {
        paths = default_paths();
    }

    let mut tails: Vec<JsonlTail> = paths.iter().map(|p| JsonlTail::new(p.clone())).collect();
    let mut dash = Dashboard::new();

    if once {
        poll_into(&mut tails, &mut dash);
        print!("{}", dash.render());
        return;
    }

    let mut screen = DiffScreen::new();
    // Restore the cursor on ctrl-C: the painter hides it on first frame.
    // (No signal-handler dependency — a plain best-effort hook.)
    let restored = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        let restored = restored.clone();
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if !restored.swap(true, std::sync::atomic::Ordering::SeqCst) {
                let _ = std::io::stdout().write_all(DiffScreen::restore().as_bytes());
            }
            prev(info);
        }));
    }
    loop {
        poll_into(&mut tails, &mut dash);
        let mut frame = dash.render();
        frame.push_str(&format!(
            "watching {} file(s) · {} · ctrl-C to quit\n",
            tails.len(),
            paths
                .first()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "(no paths)".into()),
        ));
        let ansi = screen.paint(&frame);
        if !ansi.is_empty() {
            let mut out = std::io::stdout().lock();
            let _ = out.write_all(ansi.as_bytes());
            let _ = out.flush();
        }
        std::thread::sleep(interval);
    }
}

/// Drain every tail and fold the parsed records into the dashboard.
fn poll_into(tails: &mut [JsonlTail], dash: &mut Dashboard) {
    for tail in tails {
        let lines = match tail.poll() {
            Ok(lines) => lines,
            Err(_) => continue, // transient I/O: try again next tick
        };
        for line in lines {
            if let Some(record) = telemetry::tail::parse_flat_object(&line) {
                dash.observe(&record);
            }
        }
    }
}
