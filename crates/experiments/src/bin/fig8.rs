//! Figure 8: per-branch congestion-signal statistics.
//!
//! For the five drop-tail cases, the number of congestion signals the RLA
//! sender detected from each receiver (worst/best/average per branch
//! group) next to the competing TCP connections' window-cut counts. The
//! paper's point: on equally congested branches both protocols see the
//! same congestion frequency (§3.1's macro-argument); in the unbalanced
//! cases 4–5 the counts diverge because the window sizes differ.

use experiments::prelude::*;
use experiments::tables::render_signal_table;

fn main() {
    let duration = cli::run_duration();
    let scenarios: Vec<TreeScenario> = CongestionCase::FIGURE7_CASES
        .iter()
        .map(|&case| {
            ScenarioSpec::paper(case)
                .with_duration(duration)
                .with_seed(cli::base_seed())
                .build()
        })
        .collect();
    eprintln!(
        "figure 8: per-branch signal statistics, {:.0} s per case...",
        duration.as_secs_f64()
    );
    let results = run_parallel(scenarios);
    emit_scenario_manifest("fig8", duration, &results);
    println!("Figure 8 — congestion signals per branch (RLA) vs window cuts (TCP)");
    println!("{}", render_signal_table(&results));
    println!("paper reference (worst/best/average):");
    println!("  case 1 all links:      RLA 861/861/861   TCP 879/818/851");
    println!("  case 2 all links:      RLA 762/713/707   TCP 722/688/709");
    println!("  case 3 all links:      RLA 650/609/630   TCP 657/646/652");
    println!("  case 4 more congested: RLA 952/925/938   TCP 842/819/831");
    println!("  case 4 less congested: RLA 384/351/367   TCP 413/405/409");
    println!("  case 5 more congested: RLA 1082/1082/1082 TCP 899/869/886");
    println!("  case 5 less congested: RLA 112/112/112   TCP 302/225/271");
}
