//! Equation (1): the proportional-average TCP window `√(2(1−p))/√p`.
//!
//! Sweeps the congestion probability, comparing the closed form, its
//! small-`p` approximation, a Monte-Carlo simulation of the §4.1 window
//! process, and the Mahdavi–Floyd throughput rule the paper cites.

use std::fmt::Write as _;

use analysis::{mahdavi_floyd_pps, pa_window, pa_window_approx, simulate_tcp_window};
use experiments::prelude::*;

fn main() {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Equation (1) — PA window size vs congestion probability p"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>12} {:>12} {:>14} {:>10} {:>16}",
        "p", "eq.(1)", "sqrt(2)/√p", "monte-carlo", "MC/eq.(1)", "MF pkt/s @230ms"
    );
    for &p in &[0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.03, 0.05] {
        let closed = pa_window(p);
        let approx = pa_window_approx(p);
        let sim = simulate_tcp_window(p, 4_000_000, 200_000, 42);
        let mf = mahdavi_floyd_pps(p, 0.230);
        let _ = writeln!(
            out,
            "{:>8.4} {:>12.2} {:>12.2} {:>14.2} {:>10.3} {:>16.1}",
            p,
            closed,
            approx,
            sim.mean,
            sim.mean / closed,
            mf
        );
    }
    print!("{out}");
    emit_analysis_manifest("eq1", &out, vec![("monte_carlo_seed", 42u64.into())]);
    println!("\nThe Monte-Carlo time average tracks the closed form (ratio ≈ 1),");
    println!("and both scale as 1/√p — the relation every §4 bound builds on.");
}
