//! The congestion-controller fairness grid: every registered TCP variant
//! × the five §5 congestion cases.
//!
//! Each cell reruns a paper tree scenario with the background TCP flows
//! driven by one controller from the `tcp_sack` registry (SACK, Reno,
//! CUBIC, BBRv1, and whatever gets registered next) and summarizes how
//! the soft bottleneck is shared: Jain's index, the worst pairwise
//! throughput ratio, and the paper's `λ_RLA / λ_WTCP`. One manifest
//! (`cc_matrix.manifest.json`) records the whole grid with a `tcp_cc`
//! field per run, so `rla_diff` can regression-gate every pairing's
//! fairness at once.
//!
//! `--quick` shrinks every cell to a 20 s smoke run for CI; the default
//! budget divides `RLA_DURATION_SECS` across the grid.

use experiments::prelude::*;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let duration = if quick {
        SimDuration::from_secs(20)
    } else {
        cli::scaled_duration(10.0, 120.0)
    };
    let seed = cli::base_seed();
    let cfg = MatrixConfig::full(duration, seed);
    let cells = run_matrix(&cfg);

    println!(
        "CC fairness matrix ({} variants x {} cases, {} s cells, seed {seed})",
        cfg.variants.len(),
        cfg.cases.len(),
        duration.as_secs_f64()
    );
    println!(
        "{:<16} {:<6} {:>10} {:>10} {:>8} {:>12} {:>10}",
        "case", "tcp", "rla", "wtcp", "jain", "worst pair", "rla/wtcp"
    );
    for cell in &cells {
        let r = &cell.result;
        println!(
            "{:<16} {:<6} {:>10.1} {:>10.1} {:>8.3} {:>12.2} {:>10.2}",
            r.case_label,
            cell.cc.name(),
            r.rla[0].throughput_pps,
            r.worst_tcp().map_or(0.0, |t| t.throughput_pps),
            cell.jain(),
            cell.worst_pair(),
            cell.rla_over_wtcp(),
        );
    }

    let manifest = experiments::ccmatrix::matrix_manifest("cc_matrix", &cfg, &cells);
    match experiments::manifest::write_manifest("cc_matrix", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write cc_matrix.manifest.json: {e}"),
    }

    println!(
        "\nexpected shape: every row's rla/wtcp ratio stays inside the paper's\n\
         essential-fairness bounds — the RLA keys off losses, so loss-based\n\
         controllers (sack, reno, cubic) land close together, while bbr's\n\
         rate-based probing shifts the TCP side without starving either party."
    );
}
