//! Equation (3), the Proposition, and the correlation Lemma.
//!
//! * two receivers, independent loss paths (figure 2a): the paper's closed
//!   form vs our n-receiver generalization vs Monte Carlo;
//! * the Proposition's bounds (equation 2) across receiver counts;
//! * the Lemma: common losses (figure 2b) give a larger window than
//!   independent losses at the same per-receiver congestion probability.

use std::fmt::Write as _;

use analysis::{
    eq3_two_receivers, pa_window, proposition_bounds, rla_window_common, rla_window_independent,
    simulate_rla_window,
};
use experiments::prelude::*;

fn main() {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Equation (3) — two-receiver RLA window, independent losses"
    );
    let _ = writeln!(
        out,
        "{:>8} {:>8} {:>10} {:>10} {:>12} {:>10}",
        "p1", "p2", "eq.(3)", "general", "monte-carlo", "MC/eq3"
    );
    for &(p1, p2) in &[
        (0.01, 0.01),
        (0.02, 0.02),
        (0.02, 0.01),
        (0.04, 0.002),
        (0.05, 0.0025), // the η = 20 edge: p2 = p1/20
    ] {
        let paper = eq3_two_receivers(p1, p2);
        let general = rla_window_independent(&[p1, p2]);
        let mc = simulate_rla_window(&[p1, p2], false, 4_000_000, 200_000, 7);
        let _ = writeln!(
            out,
            "{:>8.4} {:>8.4} {:>10.2} {:>10.2} {:>12.2} {:>10.3}",
            p1,
            p2,
            paper,
            general,
            mc,
            mc / paper
        );
    }

    let _ = writeln!(
        out,
        "\nProposition (equation 2) — bounds on the RLA window, p_max = 0.02"
    );
    let _ = writeln!(
        out,
        "{:>4} {:>14} {:>14} {:>12} {:>12} {:>8}",
        "n", "W (indep)", "W (common)", "lower", "upper", "inside?"
    );
    let p = 0.02;
    for &n in &[1usize, 2, 3, 9, 27] {
        let indep = rla_window_independent(&vec![p; n]);
        let common = rla_window_common(p, n);
        let b = proposition_bounds(p, n);
        // n = 1 is the degenerate boundary: W equals the lower bound.
        let tol = 1.0 + 1e-9;
        let inside = indep * tol > b.lower
            && indep < b.upper * tol
            && common * tol > b.lower
            && common < b.upper * tol;
        let _ = writeln!(
            out,
            "{:>4} {:>14.2} {:>14.2} {:>12.2} {:>12.2} {:>8}",
            n, indep, common, b.lower, b.upper, inside
        );
    }
    let _ = writeln!(
        out,
        "(lower bound = eq.(1) at p_max = {:.2}: {:.2})",
        p,
        pa_window(p)
    );

    let _ = writeln!(
        out,
        "\nLemma — correlation in losses enlarges the window (common / indep):"
    );
    for &n in &[2usize, 9, 27] {
        let indep = rla_window_independent(&vec![p; n]);
        let common = rla_window_common(p, n);
        let _ = writeln!(out, "  n = {:>2}: ratio {:.3}", n, common / indep);
    }
    print!("{out}");
    emit_analysis_manifest("eq3", &out, vec![("monte_carlo_seed", 7u64.into())]);
    println!("\n(the same ordering shows up in figure 7: case 1 > case 2 > case 3)");
}
