//! Theorems I and II: measured essential-fairness ratios vs the proved
//! bounds.
//!
//! Runs every figure-7 case under both gateway types and evaluates
//! `λ_RLA / λ_TCP` (TCP taken on the soft-bottleneck branches) against
//! Theorem I (`a = 1/3`, `b = √(3n)`, RED) and Theorem II (`a = 1/4`,
//! `b = 2n`, drop-tail). The paper's remark that the *measured* band is
//! far tighter (`a ≈ 1`, `b ≈ 3` in §5's setups) is reported alongside.

use analysis::{FairnessBounds, FairnessCheck};
use experiments::prelude::*;

fn main() {
    // Theorem sweeps run both gateway types; cap each run at a fifth of
    // the paper budget so the 10-run sweep stays tractable.
    let duration = cli::scaled_duration(5.0, 120.0);
    let mut scenarios = Vec::new();
    for &gw in &[GatewayKind::Red, GatewayKind::DropTail] {
        for &case in &CongestionCase::FIGURE7_CASES {
            scenarios.push(
                ScenarioSpec::paper(case)
                    .with_gateway(gw)
                    .with_duration(duration)
                    .with_seed(cli::base_seed())
                    .build(),
            );
        }
    }
    eprintln!(
        "theorem check: 10 runs of {:.0} s each...",
        duration.as_secs_f64()
    );
    let results = run_parallel(scenarios);
    emit_scenario_manifest("theorem_check", duration, &results);

    println!("Theorems I & II — measured ratio vs proved bounds (n = 27 troubled receivers)");
    println!(
        "{:>10} {:<16} {:>10} {:>10} {:>8} {:>14} {:>6}",
        "gateway", "case", "λ_RLA", "λ_TCP*", "ratio", "bounds [a,b]", "fair?"
    );
    let mut all_fair = true;
    let mut ratios: Vec<f64> = Vec::new();
    for r in &results {
        let bounds = match r.gateway {
            GatewayKind::Red => FairnessBounds::theorem1_red(27),
            GatewayKind::DropTail => FairnessBounds::theorem2_droptail(27),
        };
        let tcp = r.bottleneck_tcp_throughput();
        let check = FairnessCheck::evaluate(r.rla[0].throughput_pps, tcp, bounds);
        all_fair &= check.fair;
        ratios.push(check.ratio);
        println!(
            "{:>10} {:<16} {:>10.1} {:>10.1} {:>8.2} {:>14} {:>6}",
            match r.gateway {
                GatewayKind::Red => "RED",
                GatewayKind::DropTail => "drop-tail",
            },
            r.case_label,
            check.lambda_rla,
            check.lambda_tcp,
            check.ratio,
            format!("[{:.2},{:.1}]", bounds.a, bounds.b),
            if check.fair { "yes" } else { "NO" }
        );
    }
    let lo = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = ratios.iter().cloned().fold(0.0, f64::max);
    println!("\nall runs inside the theorem bounds: {all_fair}");
    println!(
        "measured band across all runs: a = {lo:.2}, b = {hi:.2} \
         (paper reports a ≈ 1, b ≈ 3 for its setups; the theorems only \
         guarantee [0.25, 54])"
    );
    println!("(λ_TCP* = mean TCP throughput over soft-bottleneck branches)");
}
