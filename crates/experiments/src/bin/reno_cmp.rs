//! TCP-flavor sensitivity: the RLA's fairness against SACK vs Reno.
//!
//! The paper's tables measure the RLA against TCP SACK background
//! traffic. With the congestion controller pluggable, the same tree
//! scenarios can run with TCP Reno flows instead. The claim under test:
//! the RLA's bounded-fairness results do not hinge on the SACK choice —
//! the fairness ratio (RLA throughput over the worst TCP's) should land
//! in the same band for both flavors, with Reno's worst TCP at most a
//! little lower because it repairs only one loss per round trip.
//!
//! This binary is the two-variant, two-case corner of the full
//! [`experiments::ccmatrix`] grid (`cc_matrix` runs everything); it
//! keeps its historical name and manifest schema.

use experiments::ccmatrix::entry_with_cc;
use experiments::prelude::*;
use tcp_sack::CcVariant;

fn main() {
    let duration = cli::scaled_duration(2.0, 120.0);
    let seed = cli::base_seed();

    // Case 3 (all leaves congested, the hardest fairness test) and
    // case 1 (root-link bottleneck), drop-tail gateways as in figure 7.
    let cfg = MatrixConfig {
        cases: vec![
            CongestionCase::Case3AllLeaves,
            CongestionCase::Case1RootLink,
        ],
        variants: vec![
            CcVariant::sack(),
            CcVariant::parse("reno").expect("reno is registered"),
        ],
        duration,
        seed,
    };
    let cells = run_matrix(&cfg);

    println!(
        "RLA fairness vs TCP flavor (drop-tail, {} s runs, seed {seed})",
        duration.as_secs_f64()
    );
    println!(
        "{:<10} {:<6} {:>10} {:>10} {:>10} {:>10}",
        "case", "tcp", "rla", "wtcp", "avg tcp", "rla/wtcp"
    );
    let mut run_entries = Vec::new();
    for cell in &cells {
        let r = &cell.result;
        println!(
            "{:<10} {:<6} {:>10.1} {:>10.1} {:>10.1} {:>10.2}",
            r.case_label,
            cell.cc.name(),
            r.rla[0].throughput_pps,
            r.worst_tcp().map_or(0.0, |t| t.throughput_pps),
            r.avg_tcp_throughput(),
            cell.rla_over_wtcp(),
        );
        run_entries.push(entry_with_cc(r, cell.cc));
    }

    let manifest = Json::obj(vec![
        ("binary", "reno_cmp".into()),
        ("duration_secs", duration.as_secs_f64().into()),
        ("runs", Json::Arr(run_entries)),
    ]);
    match experiments::manifest::write_manifest("reno_cmp", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write reno_cmp.manifest.json: {e}"),
    }

    println!(
        "\nexpected shape: for each case the sack and reno rows report similar\n\
         fairness ratios — the RLA reacts to losses, not to how the competing\n\
         TCP repairs them, so swapping the TCP flavor moves the ratio only\n\
         modestly."
    );
}
