//! TCP-flavor sensitivity: the RLA's fairness against SACK vs Reno.
//!
//! The paper's tables measure the RLA against TCP SACK background
//! traffic. With the congestion controller now pluggable, the same tree
//! scenarios can run with TCP Reno flows instead. The claim under test:
//! the RLA's bounded-fairness results do not hinge on the SACK choice —
//! the fairness ratio (RLA throughput over the worst TCP's) should land
//! in the same band for both flavors, with Reno's worst TCP at most a
//! little lower because it repairs only one loss per round trip.

use experiments::prelude::*;
use transport::CcVariant;

fn main() {
    let duration = cli::scaled_duration(2.0, 120.0);
    let seed = cli::base_seed();

    // Case 3 (all leaves congested, the hardest fairness test) and
    // case 1 (root-link bottleneck), drop-tail gateways as in figure 7.
    let cases = [
        CongestionCase::Case3AllLeaves,
        CongestionCase::Case1RootLink,
    ];
    let variants = [CcVariant::Sack, CcVariant::Reno];

    let scenarios: Vec<TreeScenario> = cases
        .iter()
        .flat_map(|&case| {
            variants.iter().map(move |&cc| {
                ScenarioSpec::paper(case)
                    .with_duration(duration)
                    .with_seed(seed)
                    .with_tcp_cc(cc)
                    .build()
            })
        })
        .collect();
    let results = run_parallel(scenarios.clone());

    println!(
        "RLA fairness vs TCP flavor (drop-tail, {} s runs, seed {seed})",
        duration.as_secs_f64()
    );
    println!(
        "{:<10} {:<6} {:>10} {:>10} {:>10} {:>10}",
        "case", "tcp", "rla", "wtcp", "avg tcp", "rla/wtcp"
    );
    let mut run_entries = Vec::new();
    for (scenario, r) in scenarios.iter().zip(&results) {
        let cc = scenario.tcp_cc.name();
        let rla = r.rla[0].throughput_pps;
        let wtcp = r.worst_tcp().map_or(0.0, |t| t.throughput_pps);
        let ratio = rla / wtcp.max(1e-9);
        println!(
            "{:<10} {:<6} {:>10.1} {:>10.1} {:>10.1} {:>10.2}",
            r.case_label,
            cc,
            rla,
            wtcp,
            r.avg_tcp_throughput(),
            ratio
        );
        let mut entry = experiments::manifest::scenario_entry(r);
        if let Json::Obj(ref mut fields) = entry {
            fields.insert(2, ("tcp_cc".to_string(), cc.into()));
        }
        run_entries.push(entry);
    }

    let manifest = Json::obj(vec![
        ("binary", "reno_cmp".into()),
        ("duration_secs", duration.as_secs_f64().into()),
        ("runs", Json::Arr(run_entries)),
    ]);
    match experiments::manifest::write_manifest("reno_cmp", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write reno_cmp.manifest.json: {e}"),
    }

    println!(
        "\nexpected shape: for each case the sack and reno rows report similar\n\
         fairness ratios — the RLA reacts to losses, not to how the competing\n\
         TCP repairs them, so swapping the TCP flavor moves the ratio only\n\
         modestly."
    );
}
