//! Dynamic-scenario sweep: receiver churn × background load across the
//! five figure-7 congestion cases.
//!
//! For every case the sweep runs four combinations on the *same seed*:
//!
//! | manifest             | churn | background |
//! |----------------------|-------|------------|
//! | `churn_sweep_static` |  off  |    off     |
//! | `churn_sweep_churn`  |  on   |    off     |
//! | `churn_sweep_bg`     |  off  |    on      |
//! | `churn_sweep`        |  on   |    on      |
//!
//! Each combination goes into its own manifest so every manifest has
//! unique `(case, gateway, seed)` labels — `rla_diff` can then self-diff
//! any of them (clean) and compare the static manifest against a dynamic
//! one (which must report drift: dynamic runs add the `net.churn.*`
//! registry block, including the `reconverge_ms` gauge).
//!
//! Knobs: `RLA_CHURN_RATE` (default 0.2 events/s when unset or 0) and
//! `RLA_BG_LOAD` (default 2.0 flows/s when unset or 0) set the sweep's
//! dynamic operating point; `RLA_EVENTS_FILE` appends a fixed schedule to
//! the churn combinations; the usual `RLA_DURATION_SECS` / `RLA_SEED` /
//! `RLA_JOBS` apply.

use experiments::prelude::*;
use telemetry::MetricValue;

/// The sweep's default churn rate when `RLA_CHURN_RATE` is unset/0.
const DEFAULT_CHURN_RATE: f64 = 0.2;
/// The sweep's default background load when `RLA_BG_LOAD` is unset/0.
const DEFAULT_BG_LOAD: f64 = 2.0;
/// Mean background flow length, packets.
const BG_MEAN_PACKETS: f64 = 20.0;

/// One sweep combination: manifest stem plus its scenario constructor.
type Combo = (&'static str, Box<dyn Fn(CongestionCase) -> TreeScenario>);

fn main() {
    let duration = cli::scaled_duration(4.0, 120.0);
    let seed = cli::base_seed();
    let churn = match cli::churn_rate() {
        r if r > 0.0 => r,
        _ => DEFAULT_CHURN_RATE,
    };
    let bg = match cli::bg_load() {
        r if r > 0.0 => r,
        _ => DEFAULT_BG_LOAD,
    };
    let extra_events = cli::events_file();

    let spec = move |case: CongestionCase| {
        ScenarioSpec::paper(case)
            .with_duration(duration)
            .with_seed(seed)
    };
    let combos: [Combo; 4] = [
        ("churn_sweep_static", Box::new(move |c| spec(c).build())),
        (
            "churn_sweep_churn",
            Box::new({
                let extra = extra_events.clone();
                move |c| {
                    spec(c)
                        .with_churn_rate(churn)
                        .with_events(extra.clone())
                        .build()
                }
            }),
        ),
        (
            "churn_sweep_bg",
            Box::new(move |c| spec(c).with_background_load(bg, BG_MEAN_PACKETS).build()),
        ),
        (
            "churn_sweep",
            Box::new({
                let extra = extra_events.clone();
                move |c| {
                    spec(c)
                        .with_churn_rate(churn)
                        .with_background_load(bg, BG_MEAN_PACKETS)
                        .with_events(extra.clone())
                        .build()
                }
            }),
        ),
    ];

    eprintln!(
        "churn sweep: 5 cases x 4 combos, {:.0} s each, churn {churn} ev/s, bg {bg} flows/s...",
        duration.as_secs_f64()
    );

    println!(
        "Dynamic-scenario sweep (drop-tail, seed {seed}, {:.0} s runs)",
        duration.as_secs_f64()
    );
    println!(
        "{:<22} {:>6} {:>8} {:>8} {:>7} {:>7} {:>12}",
        "combo/case", "rla", "wtcp", "btcp", "events", "bgpkts", "reconv_ms"
    );
    for (name, build) in &combos {
        let scenarios: Vec<TreeScenario> = CongestionCase::FIGURE7_CASES
            .iter()
            .map(|&case| build(case))
            .collect();
        let results = run_parallel(scenarios);
        for r in &results {
            let gauge = |key: &str| match r.registry.get(key) {
                Some(MetricValue::Gauge(v)) => v,
                _ => 0.0,
            };
            let count = |key: &str| match r.registry.get(key) {
                Some(MetricValue::Counter(v)) => v,
                _ => 0,
            };
            println!(
                "{:<22} {:>6.1} {:>8.1} {:>8.1} {:>7} {:>7} {:>12.1}",
                format!("{name}/{}", r.case_label),
                r.rla[0].throughput_pps,
                r.worst_tcp().map_or(0.0, |t| t.throughput_pps),
                r.best_tcp().map_or(0.0, |t| t.throughput_pps),
                r.events.len(),
                count("net.churn.bg_packets"),
                gauge("net.churn.reconverge_ms"),
            );
        }
        emit_scenario_manifest(name, duration, &results);
    }
}
