//! Engine throughput on the paper's workload: wall-clocks the fig-7
//! drop-tail scenario (case 1, every gateway drop-tail) and reports
//! simulator events per wall-second.
//!
//! The number this prints is the repo's headline perf metric: the run
//! manifest (`BENCH_engine.manifest.json`) records it together with the
//! trace digest, so a perf regression *and* a behaviour change are both
//! one `git diff` away. Set `RLA_BENCH_BASELINE` (events/sec) to a
//! previously recorded figure to get a speedup ratio in the manifest.
//!
//! Honours `RLA_DURATION_SECS` (default 60 s here — this is a bench, not
//! a table regeneration) and `RLA_SEED`.
//!
//! With `RLA_BENCH_GATE_PCT=<p>` the bench becomes a regression gate: it
//! reads the committed `BENCH_engine.manifest.json` before overwriting it
//! and exits nonzero if events/s fell more than `p` percent below the
//! recorded figure. CI uses `p = 5` to pin the telemetry-disabled hot
//! path to the baseline.
//!
//! A second phase benches the partitioned executor on the case-5 60 s
//! scenario and writes `BENCH_engine_parallel.manifest.json`. The
//! sequential figure (`events_per_sec`) is the merged-to-one-domain run
//! — the `RLA_SHARDS=1` production path — whose measured per-region
//! event counts then steer the cost-aware merge for the 2- and 4-domain
//! runs. Each of those runs single-worker with per-epoch load recording
//! armed, and the modeled aggregate is that run's measured throughput
//! times a critical-path speedup over the recorded loads — each epoch
//! costs its most-loaded worker bucket (the barrier waits for it), so
//! the model is exact for the round-robin placement the engine uses and
//! independent of how many cores the bench machine happens to have. The
//! same gate percentage applies to this manifest's sequential figure.

use std::time::Instant;

use experiments::manifest::{results_dir, write_manifest};
use experiments::prelude::*;

/// `events_per_sec` from a committed bench manifest, if one exists.
/// The manifest is this repo's own hand-rolled JSON, so a key scan is
/// enough — no parser needed.
fn committed_events_per_sec(manifest: &str) -> Option<f64> {
    let text = std::fs::read_to_string(results_dir().join(manifest)).ok()?;
    let rest = &text[text.find("\"events_per_sec\":")? + "\"events_per_sec\":".len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse().ok()
}

/// Events on the critical path of a `workers`-wide run: per epoch, the
/// barrier releases when the most-loaded bucket finishes, so the epoch
/// costs `max` over buckets of the bucket's event total (domains are
/// placed round-robin, `domain % workers`, exactly as the engine does).
fn critical_path_events(loads: &[Vec<u64>], workers: usize) -> u64 {
    loads
        .iter()
        .map(|row| {
            let mut buckets = vec![0u64; workers];
            for (d, &n) in row.iter().enumerate() {
                buckets[d % workers] += n;
            }
            buckets.into_iter().max().unwrap_or(0)
        })
        .sum()
}

/// Exit nonzero when `events_per_sec` fell more than `pct` percent below
/// the figure committed in `manifest` before this run overwrote it.
fn apply_gate(manifest: &str, committed: Option<f64>, events_per_sec: f64, pct: f64) {
    let Some(base) = committed else {
        eprintln!("gate: RLA_BENCH_GATE_PCT set but no committed {manifest} to compare");
        std::process::exit(1);
    };
    let floor = base * (1.0 - pct / 100.0);
    println!("gate floor         {floor:>12.0} ({pct}% below {base:.0})");
    if events_per_sec < floor {
        eprintln!(
            "gate: FAIL — {events_per_sec:.0} ev/s is more than {pct}% below the committed {base:.0} in {manifest}"
        );
        std::process::exit(1);
    }
    println!("gate               {:>12}", "ok");
}

fn main() {
    let duration = cli::duration_or(SimDuration::from_secs(60));
    // Read before the run: the manifest writes below overwrite the files
    // the gates compare against.
    let committed = committed_events_per_sec("BENCH_engine.manifest.json");
    let committed_parallel = committed_events_per_sec("BENCH_engine_parallel.manifest.json");
    let spec = ScenarioSpec::paper(CongestionCase::Case1RootLink)
        .with_gateway(GatewayKind::DropTail)
        .with_duration(duration)
        .with_seed(cli::base_seed());
    eprintln!(
        "perf_engine: fig-7 case-1 drop-tail, {:.0} s simulated...",
        duration.as_secs_f64()
    );

    let scenario = spec.build();
    let mut world = scenario.build();
    let wall = Instant::now();
    let result = world.run(&scenario);
    let wall_secs = wall.elapsed().as_secs_f64();

    let events = result.trace_events;
    let events_per_sec = events as f64 / wall_secs;
    println!("simulated          {:>12.0} s", duration.as_secs_f64());
    println!("packet events      {events:>12}");
    println!("wall clock         {wall_secs:>12.2} s");
    println!("events / wall-sec  {events_per_sec:>12.0}");

    let mut fields: Vec<(&str, Json)> = vec![
        ("binary", "perf_engine".into()),
        ("scenario", "fig7 case1 drop-tail".into()),
        ("duration_secs", duration.as_secs_f64().into()),
        ("seed", result.seed.into()),
        (
            "trace_digest",
            format!("{:016x}", result.trace_digest).into(),
        ),
        ("trace_events", events.into()),
        ("wall_secs", wall_secs.into()),
        ("events_per_sec", events_per_sec.into()),
    ];
    let baseline = std::env::var("RLA_BENCH_BASELINE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    if let Some(base) = baseline {
        let speedup = events_per_sec / base;
        println!("baseline           {base:>12.0}");
        println!("speedup            {speedup:>12.2}x");
        fields.push(("baseline_events_per_sec", base.into()));
        fields.push(("speedup", speedup.into()));
    }
    match write_manifest("BENCH_engine", &Json::obj(fields)) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write BENCH_engine.manifest.json: {e}"),
    }

    if let Some(pct) = cli::bench_gate_pct() {
        apply_gate("BENCH_engine.manifest.json", committed, events_per_sec, pct);
    }

    // ------------------------------------------------------------------
    // Phase 2: partitioned executor on the case-5 scenario.
    // ------------------------------------------------------------------
    eprintln!(
        "perf_engine: case-5 drop-tail partitioned, {:.0} s simulated...",
        duration.as_secs_f64()
    );
    let spec = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
        .with_gateway(GatewayKind::DropTail)
        .with_duration(duration)
        .with_seed(cli::base_seed());

    // 2a: the RLA_SHARDS=1 production path — the merge pass collapses
    // the fine partition into one domain, so this is the sequential
    // figure the gate pins. The run also yields the measured per-region
    // event counts that steer the cost-aware merge below.
    let scenario = spec.build().with_shards(1);
    let mut world = scenario.build();
    let wall = Instant::now();
    let result = world.run(&scenario);
    let wall_secs = wall.elapsed().as_secs_f64();

    let costs = world.engine.region_event_counts();
    let regions = world.engine.region_count();
    let events = result.trace_events;
    let events_per_sec_seq = events as f64 / wall_secs;
    println!("regions            {regions:>12}");
    println!("packet events      {events:>12}");
    println!("wall clock         {wall_secs:>12.2} s");
    println!("events / wall-sec  {events_per_sec_seq:>12.0}  (1 shard, measured)");

    let mut fields: Vec<(&str, Json)> = vec![
        ("binary", "perf_engine".into()),
        ("scenario", "case5 one-level-2 drop-tail partitioned".into()),
        ("duration_secs", duration.as_secs_f64().into()),
        ("seed", result.seed.into()),
        (
            "trace_digest",
            format!("{:016x}", result.trace_digest).into(),
        ),
        ("trace_events", events.into()),
        ("domains", (regions as u64).into()),
        ("wall_secs", wall_secs.into()),
        ("events_per_sec", events_per_sec_seq.into()),
    ];

    // 2b: cost-aware merges at 2 and 4 domains, run single-worker with
    // load recording armed so the critical-path model can price the
    // epoch barriers of a genuinely parallel run.
    let mut epochs = 0u64;
    for shards in [2usize, 4] {
        let scenario = spec
            .build()
            .with_shards(shards)
            .with_domain_costs(costs.clone());
        let mut world = scenario.build();
        world.engine.set_workers(1);
        world.engine.record_epoch_loads(true);
        let wall = Instant::now();
        let result = world.run(&scenario);
        let wall_secs = wall.elapsed().as_secs_f64();
        assert_eq!(
            result.trace_events, events,
            "shard count changed the event count"
        );
        let loads: Vec<Vec<u64>> = world
            .engine
            .epoch_loads()
            .expect("inline partitioned run records epoch loads")
            .to_vec();
        epochs = loads.len() as u64;
        let rate = events as f64 / wall_secs;
        let crit = critical_path_events(&loads, shards);
        let speedup = events as f64 / crit as f64;
        let aggregate = rate * speedup;
        println!(
            "events / wall-sec  {aggregate:>12.0}  ({shards} shards, modeled, {speedup:.2}x of {rate:.0})"
        );
        fields.push((
            match shards {
                2 => "events_per_sec_2_shards",
                _ => "events_per_sec_4_shards",
            },
            aggregate.into(),
        ));
        fields.push((
            match shards {
                2 => "model_speedup_2_shards",
                _ => "model_speedup_4_shards",
            },
            speedup.into(),
        ));
    }
    fields.insert(7, ("epochs", epochs.into()));
    match write_manifest("BENCH_engine_parallel", &Json::obj(fields)) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write BENCH_engine_parallel.manifest.json: {e}"),
    }

    if let Some(pct) = cli::bench_gate_pct() {
        apply_gate(
            "BENCH_engine_parallel.manifest.json",
            committed_parallel,
            events_per_sec_seq,
            pct,
        );
    }
}
