//! Figure 10: the generalized RLA with **unequal round-trip times**.
//!
//! The G3 gateways join as receivers (36 in total; their base RTT is
//! 30 ms against the leaves' 230 ms), and the sender scales the cut
//! probability with `pthresh = (srtt_i / srtt_max)² / num_trouble_rcvr` so
//! congestion signals from near receivers are mostly ignored —
//! compensating TCP's own bias toward short-RTT connections. Two
//! bottleneck placements: all level-2 links, all level-3 links.

use experiments::prelude::*;
use experiments::tables::render_fig10_table;

fn main() {
    let duration = cli::run_duration();
    let scenarios: Vec<TreeScenario> = [
        CongestionCase::Fig10AllLevel2,
        CongestionCase::Fig10AllLevel3,
    ]
    .iter()
    .map(|&case| {
        ScenarioSpec::paper(case)
            .with_duration(duration)
            .with_seed(cli::base_seed())
            .build()
    })
    .collect();
    eprintln!(
        "figure 10: generalized RLA, 36 receivers with different RTTs, {:.0} s per case...",
        duration.as_secs_f64()
    );
    let results = run_parallel(scenarios);
    emit_scenario_manifest("fig10", duration, &results);
    println!("Figure 10 — results with different round-trip times (f(x) = x^2)");
    println!("{}", render_fig10_table(&results));
    println!("paper reference:");
    println!("  case 1 (L2i): RLA 167.6 pkt/s cwnd 39.1 | WTCP 78.0 | BTCP 83.2");
    println!("  case 2 (L3i): RLA 161.6 pkt/s cwnd 36.5 | WTCP 64.2 | BTCP 67.7");
}
