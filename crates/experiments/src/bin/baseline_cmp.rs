//! §1: why threshold-based rate control fails where the RLA succeeds.
//!
//! A multicast session (3 receivers behind one drop-tail bottleneck)
//! competes with one TCP connection. The bottleneck gives a fair share of
//! 100 pkt/s to each of the two sessions. LTRC and MBFC are run at two
//! loss thresholds each; the RLA needs no threshold. The paper's claim:
//! no universal threshold makes a rate-based scheme TCP-fair — too low
//! and the controller starves, too high and it crushes TCP.

use baselines::{Ltrc, LtrcConfig, Mbfc, MbfcConfig, RateConfig, RateReceiver, RateSender};
use experiments::prelude::*;
use netsim::prelude::*;
use rla::{McastReceiver, RlaConfig, RlaSender};
use rla::{RateRla, RateRlaConfig};
use tcp_sack::{TcpConfig, TcpReceiver, TcpSender};

/// What multicast controller to install.
enum Controller {
    Ltrc(f64),
    Mbfc(f64),
    RateRla,
    Rla,
}

/// Run the contest; returns (multicast goodput at the slowest receiver,
/// TCP throughput) in pkt/s plus the engine's trace digest.
fn contest(controller: Controller, seed: u64) -> (f64, f64, u64) {
    let mut engine = Engine::new(seed);
    let queue = QueueConfig::paper_droptail();
    let src = engine.add_node("src");
    let gw = engine.add_node("gw");
    // Bottleneck: 200 pkt/s shared by 1 multicast + 1 TCP.
    engine.add_link(src, gw, 1_600_000, SimDuration::from_millis(20), &queue);
    let leaves: Vec<NodeId> = (0..3)
        .map(|i| {
            let n = engine.add_node(format!("r{i}"));
            engine.add_link(gw, n, 100_000_000, SimDuration::from_millis(5), &queue);
            n
        })
        .collect();

    let tcp_rx = engine.add_agent(leaves[0], Box::new(TcpReceiver::new(40)));
    let tcp_tx = engine.add_agent(src, Box::new(TcpSender::new(tcp_rx, TcpConfig::default())));

    let group = engine.new_group();
    let overhead = SimDuration::from_nanos(netsim::packet::tx_nanos(1000, 1_600_000));
    enum RxSet {
        Rate(Vec<AgentId>),
        Rla(Vec<AgentId>),
    }
    let (mc_tx, rxs) = match controller {
        Controller::Ltrc(threshold) => {
            let rxs: Vec<AgentId> = leaves
                .iter()
                .map(|&l| {
                    let rx = engine.add_agent(
                        l,
                        Box::new(RateReceiver::new(SimDuration::from_millis(500), 0.25)),
                    );
                    engine.join_group(group, rx);
                    rx
                })
                .collect();
            let ctl = Ltrc::new(LtrcConfig {
                loss_threshold: threshold,
                ..LtrcConfig::default()
            });
            let tx = engine.add_agent(
                src,
                Box::new(RateSender::new(group, RateConfig::default(), ctl)),
            );
            (tx, RxSet::Rate(rxs))
        }
        Controller::Mbfc(threshold) => {
            let rxs: Vec<AgentId> = leaves
                .iter()
                .map(|&l| {
                    let rx = engine.add_agent(
                        l,
                        Box::new(RateReceiver::new(SimDuration::from_millis(500), 0.25)),
                    );
                    engine.join_group(group, rx);
                    rx
                })
                .collect();
            let ctl = Mbfc::new(MbfcConfig {
                loss_threshold: threshold,
                population: 3,
                population_threshold: 0.25,
                ..MbfcConfig::default()
            });
            let tx = engine.add_agent(
                src,
                Box::new(RateSender::new(group, RateConfig::default(), ctl)),
            );
            (tx, RxSet::Rate(rxs))
        }
        Controller::RateRla => {
            let rxs: Vec<AgentId> = leaves
                .iter()
                .map(|&l| {
                    let rx = engine.add_agent(
                        l,
                        Box::new(RateReceiver::new(SimDuration::from_millis(500), 0.25)),
                    );
                    engine.join_group(group, rx);
                    rx
                })
                .collect();
            let ctl = RateRla::new(RateRlaConfig::default());
            let tx = engine.add_agent(
                src,
                Box::new(RateSender::new(group, RateConfig::default(), ctl)),
            );
            (tx, RxSet::Rate(rxs))
        }
        Controller::Rla => {
            let rxs: Vec<AgentId> = leaves
                .iter()
                .map(|&l| {
                    let rx = engine.add_agent(l, Box::new(McastReceiver::new(40)));
                    engine.join_group(group, rx);
                    engine.set_send_overhead(rx, SimDuration::from_millis(2));
                    rx
                })
                .collect();
            let tx = engine.add_agent(src, Box::new(RlaSender::new(group, RlaConfig::default())));
            (tx, RxSet::Rla(rxs))
        }
    };
    engine.compute_routes();
    engine.build_group_tree(group, src);
    engine.set_send_overhead(tcp_tx, overhead);
    engine.set_send_overhead(mc_tx, overhead);
    engine.start_agent_at(tcp_tx, SimTime::ZERO);
    engine.start_agent_at(mc_tx, SimTime::from_millis(711));
    let duration = cli::capped_duration(1000.0).as_secs_f64();
    engine.run_until(SimTime::from_secs_f64(duration));

    let mc = match rxs {
        RxSet::Rate(v) => v
            .iter()
            .map(|&rx| {
                engine
                    .agent_as::<RateReceiver>(rx)
                    .expect("rx")
                    .stats
                    .received
            })
            .min()
            .unwrap_or(0),
        RxSet::Rla(v) => v
            .iter()
            .map(|&rx| {
                engine
                    .agent_as::<McastReceiver>(rx)
                    .expect("rx")
                    .stats
                    .delivered
            })
            .min()
            .unwrap_or(0),
    };
    let tcp = engine
        .agent_as::<TcpReceiver>(tcp_rx)
        .expect("tcp rx")
        .stats
        .delivered;
    (
        mc as f64 / duration,
        tcp as f64 / duration,
        engine.trace_digest().value(),
    )
}

fn main() {
    println!("§1 — rate-based baselines vs the RLA against TCP (fair share: 100/100 pkt/s)");
    println!(
        "{:<34} {:>10} {:>10} {:>10}",
        "multicast controller", "mcast", "TCP", "mc/TCP"
    );
    let rows: Vec<(String, Controller)> = vec![
        ("LTRC, loss threshold 0.5%".into(), Controller::Ltrc(0.005)),
        ("LTRC, loss threshold 5%".into(), Controller::Ltrc(0.05)),
        ("MBFC, loss threshold 0.5%".into(), Controller::Mbfc(0.005)),
        ("MBFC, loss threshold 5%".into(), Controller::Mbfc(0.05)),
        (
            "rate-based random listening (§6)".into(),
            Controller::RateRla,
        ),
        ("RLA (no threshold to tune)".into(), Controller::Rla),
    ];
    let mut run_entries = Vec::new();
    for (label, ctl) in rows {
        let (mc, tcp, digest) = contest(ctl, cli::base_seed());
        println!(
            "{:<34} {:>10.1} {:>10.1} {:>10.2}",
            label,
            mc,
            tcp,
            mc / tcp.max(1e-9)
        );
        run_entries.push(Json::obj(vec![
            ("controller", label.as_str().into()),
            ("seed", cli::base_seed().into()),
            ("mcast_pps", mc.into()),
            ("tcp_pps", tcp.into()),
            ("trace_digest", format!("{digest:016x}").into()),
        ]));
    }
    let manifest = Json::obj(vec![
        ("binary", "baseline_cmp".into()),
        ("runs", Json::Arr(run_entries)),
    ]);
    match experiments::manifest::write_manifest("baseline_cmp", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write baseline_cmp.manifest.json: {e}"),
    }
    println!(
        "\nexpected shape: each rate-based row is far from 1.0 on at least one\n\
         threshold (starved or TCP-crushing), while the RLA sits near parity\n\
         without any topology-specific tuning — the paper's motivation for\n\
         random listening."
    );
}
