//! §3.1: TCP's macro-effect at a drop-tail gateway.
//!
//! One TCP through a drop-tail bottleneck (buffer 20). The buffer
//! occupancy oscillates between (almost) empty and full — the "buffer
//! period" — and the paper's observations are quantified here:
//!
//! * the buffer period lasts **much longer than 2·RTT**, and
//! * the buffer-full period (during which drops happen) lasts **about
//!   2·RTT or less**.
//!
//! These two facts justify grouping losses within `2·srtt` into one
//! congestion signal (RLA rule 2).

use std::cell::RefCell;
use std::rc::Rc;

use experiments::prelude::*;
use netsim::prelude::*;
use tcp_sack::{TcpConfig, TcpReceiver, TcpSender};
use telemetry::{QueueSeriesTracer, TimelineRecorder};

fn main() {
    // 100 pkt/s bottleneck, 50 ms one-way => RTT 0.1 s, BDP 10 < buffer 20.
    let mut engine = Engine::new(cli::base_seed());
    let a = engine.add_node("src");
    let b = engine.add_node("dst");
    let (down, _) = engine.add_link(
        a,
        b,
        800_000,
        SimDuration::from_millis(50),
        &QueueConfig::paper_droptail(),
    );
    let rx = engine.add_agent(b, Box::new(TcpReceiver::new(40)));
    let tx = engine.add_agent(a, Box::new(TcpSender::new(rx, TcpConfig::default())));
    engine.compute_routes();
    engine.start_agent_at(tx, SimTime::ZERO);

    // Every enqueue/transmit at the bottleneck lands in a timeline
    // channel series (the same machinery the RLA_TELEMETRY runs use);
    // the tracer's change series is what QueueLengthTracer used to hold.
    let recorder = Rc::new(RefCell::new(TimelineRecorder::new(
        SimDuration::from_millis(500),
    )));
    let tracer = Rc::new(RefCell::new(QueueSeriesTracer::new(
        recorder,
        down,
        "chan.bottleneck",
    )));
    engine.set_tracer(tracer.clone());
    let duration = cli::capped_duration(600.0).as_secs_f64();
    engine.run_until(SimTime::from_secs_f64(duration));

    let trace = tracer.borrow();
    let samples = trace.samples();
    let rtt = 0.1 + 20.0 / 100.0 * 0.5; // base RTT + typical queueing
    println!("§3.1 — buffer occupancy at a drop-tail bottleneck (cap 20, RTT ≈ {rtt:.2} s)");
    let window: Vec<(SimTime, usize)> = samples
        .iter()
        .copied()
        .filter(|(t, _)| (30.0..90.0).contains(&t.as_secs_f64()))
        .collect();
    println!(
        "{}",
        experiments::plots::render_queue_series(&window, 100, 10, 20)
    );

    // Segment the trace into buffer periods: low (<= 25% cap) -> full
    // (>= cap-1) -> back to low.
    let cap = 20usize;
    let low = cap / 4;
    let full = cap - 1;
    let mut periods: Vec<f64> = Vec::new();
    let mut full_periods: Vec<f64> = Vec::new();
    let mut period_start: Option<f64> = None;
    let mut full_start: Option<f64> = None;
    let mut reached_full = false;
    for &(t, q) in &samples {
        let ts = t.as_secs_f64();
        if ts < 20.0 {
            continue; // skip slow-start transient
        }
        if q >= full && full_start.is_none() {
            full_start = Some(ts);
        }
        if q < full {
            if let Some(fs) = full_start.take() {
                full_periods.push(ts - fs);
                reached_full = true;
            }
        }
        if q <= low {
            if let Some(ps) = period_start {
                if reached_full {
                    periods.push(ts - ps);
                    period_start = Some(ts);
                    reached_full = false;
                }
            } else {
                period_start = Some(ts);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "buffer periods:      {:>4} observed, mean {:>6.2} s  ({:.1} x 2RTT)",
        periods.len(),
        mean(&periods),
        mean(&periods) / (2.0 * rtt)
    );
    println!(
        "buffer-full periods: {:>4} observed, mean {:>6.2} s  ({:.1} x 2RTT)",
        full_periods.len(),
        mean(&full_periods),
        mean(&full_periods) / (2.0 * rtt)
    );
    println!("drops recorded at the gateway: {}", trace.drops.len());
    let manifest = Json::obj(vec![
        ("binary", "buffer_period".into()),
        ("seed", cli::base_seed().into()),
        ("duration_secs", duration.into()),
        (
            "trace_digest",
            format!("{:016x}", engine.trace_digest().value()).into(),
        ),
        ("trace_events", engine.trace_digest().events().into()),
        ("buffer_periods", periods.len().into()),
        ("buffer_period_mean_secs", mean(&periods).into()),
        ("buffer_full_periods", full_periods.len().into()),
        ("buffer_full_mean_secs", mean(&full_periods).into()),
        ("gateway_drops", trace.drops.len().into()),
    ]);
    match experiments::manifest::write_manifest("buffer_period", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write buffer_period.manifest.json: {e}"),
    }
    println!("\npaper's observation: buffer period >> 2RTT; buffer-full period <~ 2RTT,");
    println!("which is why the RLA groups losses within 2·srtt into one congestion signal.");
}
