//! Figure 4: the average drift diagram of two competing RLA windows.
//!
//! Analytic Markov model of §4.4 with the paper's parameters `n = 3`,
//! `pipe = 10`: below the pipe both windows drift up the 45° line; above
//! it the drift turns back toward the fair operating point. Printed as an
//! ASCII vector field plus the raw values as CSV.

use std::fmt::Write as _;

use analysis::particle::drift_field;
use experiments::plots::render_drift_field;
use experiments::prelude::*;

fn main() {
    let n = 3;
    let pipe = 10.0;
    let w_max = 16.0;
    let step = 1.0;
    let field = drift_field(n, pipe, w_max, step);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 4 — average drift of (cwnd1, cwnd2), n = {n}, pipe = {pipe}"
    );
    let _ = writeln!(
        out,
        "(7 = both grow; L = both shrink; direction of steepest drift per cell)"
    );
    let _ = writeln!(out, "{}", render_drift_field(&field, w_max, step));

    let _ = writeln!(out, "raw field (CSV): w1,w2,dx,dy");
    for v in &field {
        let _ = writeln!(out, "{},{},{:.4},{:.4}", v.w1, v.w2, v.dx, v.dy);
    }
    print!("{out}");
    emit_analysis_manifest(
        "fig4",
        &out,
        vec![
            ("receivers", (n as u64).into()),
            ("pipe", pipe.into()),
            ("w_max", w_max.into()),
        ],
    );

    // The headline property: drift points toward the fair point.
    let below = field
        .iter()
        .find(|v| v.w1 + v.w2 < pipe)
        .expect("points below the pipe exist");
    let above = field
        .iter()
        .find(|v| v.w1 > 12.0 && v.w2 > 12.0)
        .expect("points above the pipe exist");
    println!(
        "\ncheck: below pipe drift = (+{:.2}, +{:.2})",
        below.dx, below.dy
    );
    println!(
        "check: far above pipe drift = ({:.2}, {:.2}) (must be negative)",
        above.dx, above.dy
    );
}
