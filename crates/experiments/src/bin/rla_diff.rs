//! `rla_diff` — compare the `registry` sections of two run manifests.
//!
//! ```text
//! rla_diff <baseline.manifest.json> <candidate.manifest.json>
//!          [--threshold PCT] [--abs VALUE] [--json]
//! ```
//!
//! Runs are aligned by `(case, gateway, seed)`, registries by metric key;
//! every metric whose relative change (absolute change, for zero-baseline
//! counters) exceeds the threshold is reported, largest movement first.
//! The threshold comes from `--threshold`, else `RLA_DIFF_THRESHOLD_PCT`,
//! else 1%.
//!
//! Exit codes are CI-friendly: 0 = registries match within threshold,
//! 1 = drift (the report says what moved), 2 = usage or parse error.
//! `--json` swaps the human table for a machine-readable object on
//! stdout; the verdict and exit code are the same either way.

use std::process::ExitCode;

use experiments::cli;
use experiments::diff::{diff_manifests, parse_manifest, render_table, to_json, DiffOptions};

const USAGE: &str = "usage: rla_diff <baseline.manifest.json> <candidate.manifest.json> \
                     [--threshold PCT] [--abs VALUE] [--json]";

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("rla_diff: {msg}");
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

struct Args {
    baseline: String,
    candidate: String,
    threshold: Option<f64>,
    abs_epsilon: Option<f64>,
    json: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut paths = Vec::new();
    let mut threshold = None;
    let mut abs_epsilon = None;
    let mut json = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--threshold" | "--abs" => {
                let value = it
                    .next()
                    .ok_or_else(|| format!("{arg} needs a numeric value"))?;
                let parsed: f64 = value
                    .parse()
                    .map_err(|_| format!("{arg} {value:?}: expected a number"))?;
                if !parsed.is_finite() || parsed < 0.0 {
                    return Err(format!("{arg} {value:?}: expected a non-negative number"));
                }
                if arg == "--threshold" {
                    threshold = Some(parsed);
                } else {
                    abs_epsilon = Some(parsed);
                }
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag {flag:?}")),
            path => paths.push(path.to_string()),
        }
    }
    let [baseline, candidate] = <[String; 2]>::try_from(paths)
        .map_err(|got| format!("expected exactly two manifest paths, got {}", got.len()))?;
    Ok(Args {
        baseline,
        candidate,
        threshold,
        abs_epsilon,
        json,
    })
}

fn run() -> Result<ExitCode, String> {
    let args = parse_args(&std::env::args().skip(1).collect::<Vec<_>>())?;
    // Flag beats environment beats default, like the other knobs.
    let mut opts = DiffOptions::default();
    if let Some(pct) = cli::diff_threshold_pct() {
        opts.threshold_pct = pct;
    }
    if let Some(pct) = args.threshold {
        opts.threshold_pct = pct;
    }
    if let Some(eps) = args.abs_epsilon {
        opts.abs_epsilon = eps;
    }

    let load = |path: &str| -> Result<experiments::Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        parse_manifest(&text).map_err(|e| format!("{path}: {e}"))
    };
    let baseline = load(&args.baseline)?;
    let candidate = load(&args.candidate)?;

    let diff = diff_manifests(&baseline, &candidate, &opts)
        .map_err(|e| format!("{} vs {}: {e}", args.baseline, args.candidate))?;

    if args.json {
        print!("{}", to_json(&diff).pretty());
    } else if diff.has_drift() {
        print!("{}", render_table(&diff));
    } else {
        let metrics: usize = diff.runs.iter().map(|r| r.within + r.unchanged).sum();
        println!(
            "registries match within {}% across {} run(s), {} metric(s)",
            opts.threshold_pct,
            diff.runs.len(),
            metrics
        );
    }
    Ok(ExitCode::from(u8::from(diff.has_drift())))
}
