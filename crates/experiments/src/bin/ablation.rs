//! Ablations of the RLA's design choices (DESIGN.md §6).
//!
//! Each row reruns the case-3 drop-tail scenario (the hardest case:
//! 27 independently congested branches) with one knob changed:
//!
//! * **η** — rule 6's troubled-receiver margin. Too small and mildly
//!   congested receivers stop counting (over-cutting); the paper's
//!   analysis needs `1/η > f(p₁) ≈ 0.03`, hence η = 20.
//! * **forced cut** — rule 3's damping. Without it the randomness can
//!   ignore long runs of signals.
//! * **burst limit** — the fast-recovery guard against a suddenly
//!   widely-open window.
//! * **pthresh policy** — Equal vs the §5.3 RTT-scaled rule on the
//!   unequal-RTT topology.

use experiments::manifest::{scenario_entry, write_manifest};
use experiments::prelude::*;
use rla::{PthreshPolicy, RlaConfig};

fn scenario(case: CongestionCase, cfg: RlaConfig, duration: SimDuration) -> TreeScenario {
    ScenarioSpec::paper(case)
        .with_rla_config(cfg)
        .with_duration(duration)
        .with_seed(cli::base_seed())
        .build()
}

fn main() {
    // A fifth of the paper budget per variant keeps the 8-run sweep
    // inside one paper-run's budget.
    let duration = cli::scaled_duration(5.0, 120.0);
    let base = CongestionCase::Case3AllLeaves;

    let rows: Vec<(String, TreeScenario)> = vec![
        (
            "baseline (eta=20, forced cut on, burst 4)".into(),
            scenario(base, RlaConfig::default(), duration),
        ),
        (
            "eta = 2 (narrow trouble margin)".into(),
            scenario(
                base,
                RlaConfig {
                    eta: 2.0,
                    ..RlaConfig::default()
                },
                duration,
            ),
        ),
        (
            "eta = 200 (everyone counts)".into(),
            scenario(
                base,
                RlaConfig {
                    eta: 200.0,
                    ..RlaConfig::default()
                },
                duration,
            ),
        ),
        (
            "forced cut disabled".into(),
            scenario(
                base,
                RlaConfig {
                    forced_cut_enabled: false,
                    ..RlaConfig::default()
                },
                duration,
            ),
        ),
        (
            "burst limit 1".into(),
            scenario(
                base,
                RlaConfig {
                    max_burst: 1,
                    ..RlaConfig::default()
                },
                duration,
            ),
        ),
        (
            "burst limit 64 (guard off)".into(),
            scenario(
                base,
                RlaConfig {
                    max_burst: 64,
                    ..RlaConfig::default()
                },
                duration,
            ),
        ),
        (
            "fig10 topology, Equal policy".into(),
            scenario(
                CongestionCase::Fig10AllLevel3,
                RlaConfig {
                    pthresh_policy: PthreshPolicy::Equal,
                    ..RlaConfig::default()
                },
                duration,
            ),
        ),
        (
            "fig10 topology, RTT-scaled policy".into(),
            scenario(
                CongestionCase::Fig10AllLevel3,
                RlaConfig {
                    pthresh_policy: PthreshPolicy::paper_rtt_scaled(),
                    ..RlaConfig::default()
                },
                duration,
            ),
        ),
    ];

    eprintln!(
        "ablation: {} runs of {:.0} s each...",
        rows.len(),
        duration.as_secs_f64()
    );
    let labels: Vec<String> = rows.iter().map(|(l, _)| l.clone()).collect();
    let results = run_parallel(rows.into_iter().map(|(_, s)| s).collect());

    let runs: Vec<Json> = labels
        .iter()
        .zip(&results)
        .map(|(label, r)| {
            let mut entry = scenario_entry(r);
            if let Json::Obj(fields) = &mut entry {
                fields.insert(0, ("variant".to_string(), label.as_str().into()));
            }
            entry
        })
        .collect();
    let manifest = Json::obj(vec![
        ("binary", "ablation".into()),
        ("duration_secs", duration.as_secs_f64().into()),
        ("runs", Json::Arr(runs)),
    ]);
    match write_manifest("ablation", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write ablation.manifest.json: {e}"),
    }

    println!("RLA design ablations (case-3 drop-tail unless noted)");
    println!(
        "{:<44} {:>8} {:>7} {:>8} {:>7} {:>7} {:>8} {:>8}",
        "variant", "RLA", "cwnd", "signals", "cuts", "forced", "WTCP", "ratio"
    );
    for (label, r) in labels.iter().zip(&results) {
        let a = &r.rla[0];
        let w = r.worst_tcp().expect("tcp").throughput_pps;
        println!(
            "{:<44} {:>8.1} {:>7.1} {:>8} {:>7} {:>7} {:>8.1} {:>8.2}",
            label,
            a.throughput_pps,
            a.cwnd_avg,
            a.cong_signals,
            a.window_cuts,
            a.forced_cuts,
            w,
            a.throughput_pps / w
        );
    }
    println!(
        "\nreading guide: η=2 under-counts troubled receivers (more cuts, less\n\
         throughput); disabling the forced cut removes the damping the paper\n\
         added for safety; the RTT-scaled policy matters only when RTTs differ."
    );
}
