//! §5.2: two overlapping multicast sessions share bandwidth equally.
//!
//! The case-3 topology (all 27 leaf links congested) with **two** RLA
//! sessions from the same sender node to the same receiver set. The paper
//! reports 65.1 / 65.9 pkt/s and average windows 19.9 / 20.1 — the
//! multicast-fairness property of §4.4 realized in the full simulator.

use experiments::prelude::*;

fn main() {
    let duration = cli::run_duration();
    let spec = ScenarioSpec::paper(CongestionCase::Case3AllLeaves)
        .with_sessions(2)
        .with_duration(duration)
        .with_seed(cli::base_seed());
    eprintln!(
        "section 5.2: two overlapping RLA sessions, case-3 topology, {:.0} s...",
        duration.as_secs_f64()
    );
    let r = spec.run();
    emit_scenario_manifest("sec52", duration, std::slice::from_ref(&r));

    println!("Section 5.2 — two overlapping multicast sessions (case-3 topology)");
    for (i, s) in r.rla.iter().enumerate() {
        println!(
            "  session {}: throughput {:>7.1} pkt/s   avg cwnd {:>6.1}   wnd cuts {}",
            i + 1,
            s.throughput_pps,
            s.cwnd_avg,
            s.window_cuts
        );
    }
    let (a, b) = (r.rla[0].throughput_pps, r.rla[1].throughput_pps);
    println!(
        "  split: {:.1}% / {:.1}%",
        100.0 * a / (a + b),
        100.0 * b / (a + b)
    );
    println!(
        "  competing TCP: worst {:.1}, best {:.1} pkt/s",
        r.worst_tcp().expect("tcp rows").throughput_pps,
        r.best_tcp().expect("tcp rows").throughput_pps
    );
    println!("paper reference: 65.1 / 65.9 pkt/s, windows 19.9 / 20.1");
}
