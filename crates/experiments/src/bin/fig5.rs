//! Figure 5: density of `(cwnd₁, cwnd₂)` for two competing RLA sessions.
//!
//! Two views:
//!
//! 1. the §4.4 Markov **particle model** (no feedback delay, shared pipe),
//!    and
//! 2. the **full simulator** on the paper's footnote-11 setup: a flat
//!    27-path star (figure 1) where every path has a delay-bandwidth
//!    product of 60 packets shared by 2 multicast sessions and 1 TCP — so
//!    each session should average a window near 20.
//!
//! Both densities concentrate around the fair operating point.

use analysis::particle::simulate_particle;
use experiments::plots::render_density;
use experiments::prelude::*;
use netsim::prelude::*;
use rla::{McastReceiver, RlaConfig, RlaSender};
use tcp_sack::{TcpConfig, TcpReceiver, TcpSender};
use telemetry::timeline::Sample;
use telemetry::{FlowProbe, TimelineRecorder};

fn particle_view() -> experiments::Json {
    // pipe 40 shared by the two sessions themselves -> fair point (20,20).
    let stats = simulate_particle(27, 40.0, 2_000_000, 5, 60);
    println!("— particle model (n = 27, fair point (20, 20)) —");
    println!("{}", render_density(&stats, 60, 20));
    println!(
        "mean windows: {:.1} / {:.1}; mode cell {:?}; mass within ±8 of (20,20): {:.0}%\n",
        stats.mean_w1,
        stats.mean_w2,
        stats.mode(),
        100.0 * stats.mass_near(20.0, 20.0, 8.0)
    );
    experiments::Json::obj(vec![
        ("view", "particle".into()),
        ("seed", 5u64.into()),
        ("mean_w1", stats.mean_w1.into()),
        ("mean_w2", stats.mean_w2.into()),
        (
            "mass_near_fair_point",
            stats.mass_near(20.0, 20.0, 8.0).into(),
        ),
    ])
}

fn full_sim_view() -> experiments::Json {
    // Flat star: S -- R_i over 27 independent paths, BDP = 60 packets:
    // 600 pkt/s (4.8 Mbps) with 50 ms one-way delay (RTT 0.1 s).
    let mut engine = Engine::new(cli::base_seed());
    let queue = QueueConfig::paper_droptail();
    let star = experiments::build_star(
        &mut engine,
        &vec![experiments::BranchSpec::fig5(); 27],
        &queue,
    );
    let root = star.root;
    let leaves = star.leaves;

    let mut rla_senders = Vec::new();
    for _ in 0..2 {
        let group = engine.new_group();
        for &leaf in &leaves {
            let rx = engine.add_agent(leaf, Box::new(McastReceiver::new(40)));
            engine.join_group(group, rx);
            engine.set_send_overhead(rx, SimDuration::from_millis(2));
        }
        let tx = engine.add_agent(root, Box::new(RlaSender::new(group, RlaConfig::default())));
        rla_senders.push(tx);
    }
    let mut tcp_senders = Vec::new();
    for &leaf in &leaves {
        let rx = engine.add_agent(leaf, Box::new(TcpReceiver::new(40)));
        engine.set_send_overhead(rx, SimDuration::from_millis(2));
        let tx = engine.add_agent(root, Box::new(TcpSender::new(rx, TcpConfig::default())));
        tcp_senders.push(tx);
    }
    engine.compute_routes();
    engine.build_group_tree(GroupId(0), root);
    engine.build_group_tree(GroupId(1), root);
    // Random overhead against drop-tail phase effects (1000 B at 600 pkt/s).
    let overhead = SimDuration::from_nanos(netsim::packet::tx_nanos(1000, 4_800_000));
    let mut t = SimTime::ZERO;
    for &a in tcp_senders.iter().chain(rla_senders.iter()) {
        engine.set_send_overhead(a, overhead);
        engine.start_agent_at(a, t);
        t += SimDuration::from_millis(173);
    }

    // Sample both senders into a telemetry timeline every 0.2 s after
    // warmup, then regenerate the density map from the recorded series —
    // the same dump an RLA_TELEMETRY run writes, so the figure can be
    // rebuilt from a .timeline.jsonl file without re-simulating.
    let duration = cli::capped_duration(1200.0).as_secs_f64();
    let warmup = 50.0f64.min(duration / 4.0);
    engine.run_until(SimTime::from_secs_f64(warmup));
    let mut rec = TimelineRecorder::new(SimDuration::from_millis(200));
    let sids = [
        rec.add_flow("rla.0".to_string(), "rla"),
        rec.add_flow("rla.1".to_string(), "rla"),
    ];
    let mut now = warmup;
    while now < duration {
        now += 0.2;
        engine.run_until(SimTime::from_secs_f64(now));
        let t = SimTime::from_secs_f64(now);
        for (sid, &a) in sids.iter().zip(&rla_senders) {
            let s: &RlaSender = engine.agent_as(a).expect("sender");
            rec.record_flow(*sid, t, s.flow_sample());
        }
    }

    // Regeneration pass: fold the two cwnd series into the histogram.
    let cwnd_series = |i: usize| -> Vec<f64> {
        rec.series()[i]
            .samples
            .iter()
            .map(|(_, s)| match s {
                Sample::Flow(f) => f.cwnd,
                Sample::Channel(_) => unreachable!("flow series"),
            })
            .collect()
    };
    let (w1s, w2s) = (cwnd_series(0), cwnd_series(1));
    let grid = 60usize;
    let mut histogram = vec![vec![0u64; grid + 1]; grid + 1];
    let mut sum = [0.0f64; 2];
    let mut samples = 0u64;
    for (&w1, &w2) in w1s.iter().zip(&w2s) {
        sum[0] += w1;
        sum[1] += w2;
        samples += 1;
        let x = (w1.floor() as usize).min(grid);
        let y = (w2.floor() as usize).min(grid);
        histogram[x][y] += 1;
    }
    let stats = analysis::ParticleStats {
        mean_w1: sum[0] / samples as f64,
        mean_w2: sum[1] / samples as f64,
        histogram,
        steps: samples,
    };
    println!("— full simulator (27-path star, BDP 60, 2 RLA + 1 TCP per path) —");
    println!("{}", render_density(&stats, grid, 20));
    println!(
        "mean windows: {:.1} / {:.1} over {} samples ({}s simulated)",
        stats.mean_w1, stats.mean_w2, stats.steps, duration
    );
    println!("paper reference: density centred at (20, 20)");
    experiments::Json::obj(vec![
        ("view", "full-sim".into()),
        ("seed", cli::base_seed().into()),
        ("duration_secs", duration.into()),
        (
            "trace_digest",
            format!("{:016x}", engine.trace_digest().value()).into(),
        ),
        ("trace_events", engine.trace_digest().events().into()),
        ("mean_w1", stats.mean_w1.into()),
        ("mean_w2", stats.mean_w2.into()),
    ])
}

fn main() {
    println!("Figure 5 — occurrence density of (cwnd1, cwnd2)\n");
    let particle = particle_view();
    let full = full_sim_view();
    let manifest = experiments::Json::obj(vec![
        ("binary", "fig5".into()),
        ("views", experiments::Json::Arr(vec![particle, full])),
    ]);
    match experiments::manifest::write_manifest("fig5", &manifest) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write fig5.manifest.json: {e}"),
    }
}
