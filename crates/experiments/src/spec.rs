//! Declarative scenario construction: [`ScenarioSpec`].
//!
//! The experiment binaries used to hand-mutate [`TreeScenario`] fields
//! (`s.rla_sessions = 2`, `s.rla_config = cfg`), which silently bypassed
//! the invariants `TreeScenario::paper` establishes — most visibly the
//! case-dependent pthresh policy. `ScenarioSpec` is an order-independent
//! builder: overrides are recorded, and [`ScenarioSpec::build`] applies
//! them in one fixed sequence on top of the paper defaults, so
//! `.with_seed(7).with_duration(d)` and `.with_duration(d).with_seed(7)`
//! produce byte-identical scenarios.

use netsim::time::SimDuration;

use rla::RlaConfig;
use transport::CcVariant;

use crate::metrics::ScenarioResult;
use crate::scenario::{GatewayKind, TreeScenario};
use crate::tree::CongestionCase;

/// A declarative description of one tree-scenario run.
///
/// Construct with [`ScenarioSpec::paper`], layer overrides with the
/// `with_*` methods, then [`build`](ScenarioSpec::build) a
/// [`TreeScenario`] or [`run`](ScenarioSpec::run) it directly.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    case: CongestionCase,
    gateway: GatewayKind,
    sessions: usize,
    seed: Option<u64>,
    duration: Option<SimDuration>,
    rla_config: Option<RlaConfig>,
    tcp_cc: Option<CcVariant>,
}

impl ScenarioSpec {
    /// Paper defaults for `case`: drop-tail gateways, one RLA session,
    /// 3000 s / 100 s warmup, seed 1, case-appropriate pthresh policy.
    pub fn paper(case: CongestionCase) -> Self {
        ScenarioSpec {
            case,
            gateway: GatewayKind::DropTail,
            sessions: 1,
            seed: None,
            duration: None,
            rla_config: None,
            tcp_cc: None,
        }
    }

    /// Gateway type on every link (default: drop-tail).
    pub fn with_gateway(mut self, gateway: GatewayKind) -> Self {
        self.gateway = gateway;
        self
    }

    /// Number of overlapping RLA sessions (default 1; §5.2 uses 2).
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        assert!(sessions >= 1, "need at least one RLA session");
        self.sessions = sessions;
        self
    }

    /// Override the RNG seed (default: the paper's seed 1).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Override the simulated run length; warmup rescales with it
    /// (see [`TreeScenario::with_duration`]).
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Replace the RLA sender configuration wholesale (ablations).
    ///
    /// Omitting this keeps the paper's case-dependent default — notably
    /// the RTT-scaled pthresh policy for the figure-10 cases — so only
    /// set it when the experiment really sweeps the RLA parameters.
    pub fn with_rla_config(mut self, config: RlaConfig) -> Self {
        self.rla_config = Some(config);
        self
    }

    /// Which congestion controller the background TCP flows run
    /// (default: the paper's SACK).
    pub fn with_tcp_cc(mut self, cc: CcVariant) -> Self {
        self.tcp_cc = Some(cc);
        self
    }

    /// The congestion case this spec describes.
    pub fn case(&self) -> CongestionCase {
        self.case
    }

    /// The gateway kind this spec describes.
    pub fn gateway(&self) -> GatewayKind {
        self.gateway
    }

    /// Materialize the [`TreeScenario`]. Overrides are applied in a fixed
    /// order, so the builder-call order never matters.
    pub fn build(&self) -> TreeScenario {
        let mut s = TreeScenario::paper(self.case, self.gateway);
        if let Some(d) = self.duration {
            s = s.with_duration(d);
        }
        if let Some(seed) = self.seed {
            s = s.with_seed(seed);
        }
        s.rla_sessions = self.sessions;
        if let Some(cfg) = &self.rla_config {
            s.rla_config = cfg.clone();
        }
        if let Some(cc) = self.tcp_cc {
            s = s.with_tcp_cc(cc);
        }
        s
    }

    /// Build, run and measure in one step.
    pub fn run(&self) -> ScenarioResult {
        self.build().run()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rla::PthreshPolicy;

    #[test]
    fn builder_order_does_not_matter() {
        let d = SimDuration::from_secs(90);
        let a = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_seed(7)
            .with_duration(d)
            .with_gateway(GatewayKind::Red)
            .build();
        let b = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_gateway(GatewayKind::Red)
            .with_duration(d)
            .with_seed(7)
            .build();
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.warmup, b.warmup);
        assert_eq!(a.gateway, b.gateway);
    }

    #[test]
    fn matches_hand_built_tree_scenario() {
        let d = SimDuration::from_secs(60);
        let via_spec = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(d)
            .with_seed(1)
            .build();
        let by_hand = TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::DropTail)
            .with_duration(d)
            .with_seed(1);
        assert_eq!(via_spec.seed, by_hand.seed);
        assert_eq!(via_spec.duration, by_hand.duration);
        assert_eq!(via_spec.warmup, by_hand.warmup);
        assert_eq!(via_spec.rla_sessions, by_hand.rla_sessions);
    }

    #[test]
    fn paper_pthresh_policy_survives_other_overrides() {
        let s = ScenarioSpec::paper(CongestionCase::Case1RootLink)
            .with_sessions(2)
            .with_duration(SimDuration::from_secs(60))
            .build();
        assert_eq!(s.rla_sessions, 2);
        assert_eq!(s.rla_config.pthresh_policy, PthreshPolicy::Equal);
        let g3 = ScenarioSpec::paper(CongestionCase::Fig10AllLevel2).build();
        assert_ne!(g3.rla_config.pthresh_policy, PthreshPolicy::Equal);
    }

    #[test]
    fn rla_config_override_replaces_wholesale() {
        let cfg = RlaConfig {
            eta: 0.42,
            ..RlaConfig::default()
        };
        let s = ScenarioSpec::paper(CongestionCase::Case2AllLevel3)
            .with_rla_config(cfg.clone())
            .build();
        assert_eq!(s.rla_config.eta, cfg.eta);
        assert_eq!(s.rla_config.pthresh_policy, cfg.pthresh_policy);
    }
}
