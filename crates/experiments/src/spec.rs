//! Declarative scenario construction: [`ScenarioSpec`].
//!
//! The experiment binaries used to hand-mutate [`TreeScenario`] fields
//! (`s.rla_sessions = 2`, `s.rla_config = cfg`), which silently bypassed
//! the invariants `TreeScenario::paper` establishes — most visibly the
//! case-dependent pthresh policy. `ScenarioSpec` is an order-independent
//! builder: overrides are recorded, and [`ScenarioSpec::build`] applies
//! them in one fixed sequence on top of the paper defaults, so
//! `.with_seed(7).with_duration(d)` and `.with_duration(d).with_seed(7)`
//! produce byte-identical scenarios.

use netsim::time::SimDuration;

use rla::RlaConfig;
use tcp_sack::CcVariant;

use crate::events::{synth_churn, BackgroundLoad, EventCommand, ScenarioEvent};
use crate::metrics::ScenarioResult;
use crate::scenario::{GatewayKind, TreeScenario};
use crate::tree::CongestionCase;

/// A declarative description of one tree-scenario run.
///
/// Construct with [`ScenarioSpec::paper`], layer overrides with the
/// `with_*` methods, then [`build`](ScenarioSpec::build) a
/// [`TreeScenario`] or [`run`](ScenarioSpec::run) it directly.
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    case: CongestionCase,
    gateway: GatewayKind,
    sessions: usize,
    seed: Option<u64>,
    duration: Option<SimDuration>,
    rla_config: Option<RlaConfig>,
    tcp_cc: Option<CcVariant>,
    events: Vec<ScenarioEvent>,
    churn_rate: f64,
    bg_load: Option<BackgroundLoad>,
    shards: Option<usize>,
    domain_costs: Option<Vec<u64>>,
}

impl ScenarioSpec {
    /// Paper defaults for `case`: drop-tail gateways, one RLA session,
    /// 3000 s / 100 s warmup, seed 1, case-appropriate pthresh policy.
    pub fn paper(case: CongestionCase) -> Self {
        ScenarioSpec {
            case,
            gateway: GatewayKind::DropTail,
            sessions: 1,
            seed: None,
            duration: None,
            rla_config: None,
            tcp_cc: None,
            events: Vec::new(),
            churn_rate: 0.0,
            bg_load: None,
            shards: None,
            domain_costs: None,
        }
    }

    /// Gateway type on every link (default: drop-tail).
    pub fn with_gateway(mut self, gateway: GatewayKind) -> Self {
        self.gateway = gateway;
        self
    }

    /// Number of overlapping RLA sessions (default 1; §5.2 uses 2).
    pub fn with_sessions(mut self, sessions: usize) -> Self {
        assert!(sessions >= 1, "need at least one RLA session");
        self.sessions = sessions;
        self
    }

    /// Override the RNG seed (default: the paper's seed 1).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Some(seed);
        self
    }

    /// Override the simulated run length; warmup rescales with it
    /// (see [`TreeScenario::with_duration`]).
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        self.duration = Some(duration);
        self
    }

    /// Replace the RLA sender configuration wholesale (ablations).
    ///
    /// Omitting this keeps the paper's case-dependent default — notably
    /// the RTT-scaled pthresh policy for the figure-10 cases — so only
    /// set it when the experiment really sweeps the RLA parameters.
    pub fn with_rla_config(mut self, config: RlaConfig) -> Self {
        self.rla_config = Some(config);
        self
    }

    /// Which congestion controller the background TCP flows run
    /// (default: the paper's SACK).
    pub fn with_tcp_cc(mut self, cc: CcVariant) -> Self {
        self.tcp_cc = Some(cc);
        self
    }

    /// Replace the scheduled event list (default: none — a static run).
    /// Event times must fall strictly inside the run; [`build`] rejects
    /// out-of-range events with a clear error.
    ///
    /// [`build`]: ScenarioSpec::build
    pub fn with_events(mut self, events: Vec<ScenarioEvent>) -> Self {
        self.events = events;
        self
    }

    /// Append one scheduled event (see [`with_events`]).
    ///
    /// [`with_events`]: ScenarioSpec::with_events
    pub fn with_event(mut self, event: ScenarioEvent) -> Self {
        self.events.push(event);
        self
    }

    /// Synthesize receiver churn at `rate_hz` leave/rejoin events per
    /// second (default 0 — no churn). The schedule is drawn from a salted
    /// RNG seeded by the scenario seed, so it is deterministic and does
    /// not perturb the engine RNG stream. See [`synth_churn`].
    pub fn with_churn_rate(mut self, rate_hz: f64) -> Self {
        assert!(
            rate_hz >= 0.0 && rate_hz.is_finite(),
            "churn rate must be non-negative and finite (got {rate_hz})"
        );
        self.churn_rate = rate_hz;
        self
    }

    /// Add Poisson short-flow background traffic sharing the scenario's
    /// bottleneck links: `flows_per_sec` arrivals averaging
    /// `mean_flow_packets` packets (default: none).
    pub fn with_background_load(mut self, flows_per_sec: f64, mean_flow_packets: f64) -> Self {
        self.bg_load = Some(BackgroundLoad {
            flows_per_sec,
            mean_flow_packets,
        });
        self
    }

    /// Override the target execution-domain and worker count for the
    /// partitioned engine (default: the `RLA_SHARDS` knob). Results are
    /// identical at every value — see [`TreeScenario::with_shards`].
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one worker is required");
        self.shards = Some(shards);
        self
    }

    /// Measured per-region event counts steering the cost-aware domain
    /// merge (default: the engine's bandwidth·fan-out estimate). One
    /// weight per region of the fine partition, e.g. a previous run's
    /// `Engine::region_event_counts`. Only the execution grouping moves;
    /// every digest is identical with or without costs.
    pub fn with_domain_costs(mut self, costs: Vec<u64>) -> Self {
        self.domain_costs = Some(costs);
        self
    }

    /// The congestion case this spec describes.
    pub fn case(&self) -> CongestionCase {
        self.case
    }

    /// The gateway kind this spec describes.
    pub fn gateway(&self) -> GatewayKind {
        self.gateway
    }

    /// Materialize the [`TreeScenario`]. Overrides are applied in a fixed
    /// order, so the builder-call order never matters.
    pub fn build(&self) -> TreeScenario {
        let mut s = TreeScenario::paper(self.case, self.gateway);
        if let Some(d) = self.duration {
            s = s.with_duration(d);
        }
        if let Some(seed) = self.seed {
            s = s.with_seed(seed);
        }
        s.rla_sessions = self.sessions;
        if let Some(cfg) = &self.rla_config {
            s.rla_config = cfg.clone();
        }
        if let Some(cc) = self.tcp_cc {
            s = s.with_tcp_cc(cc);
        }
        let mut events = self.events.clone();
        if self.churn_rate > 0.0 {
            events.extend(synth_churn(self.churn_rate, s.seed, s.warmup, s.duration));
        }
        for ev in &events {
            validate_event(ev, s.duration, self.sessions);
        }
        // Stable sort: equal timestamps keep schedule order, pinning the
        // FIFO tie-break the executor relies on.
        events.sort_by_key(|ev| ev.at);
        s.events = events;
        s.bg_load = self.bg_load.clone();
        if let Some(shards) = self.shards {
            s = s.with_shards(shards);
        }
        if let Some(costs) = &self.domain_costs {
            s = s.with_domain_costs(costs.clone());
        }
        s
    }

    /// Build, run and measure in one step.
    pub fn run(&self) -> ScenarioResult {
        self.build().run()
    }
}

/// Reject a malformed scheduled event at build time with an error that
/// names the offending field, mirroring the named-knob style of [`cli`].
///
/// [`cli`]: crate::cli
fn validate_event(ev: &ScenarioEvent, duration: SimDuration, sessions: usize) {
    let t = ev.at.as_secs_f64();
    assert!(
        ev.at > SimDuration::ZERO && ev.at < duration,
        "scenario event at {t}s is outside the run: event times must satisfy \
         0 < t < duration ({}s) — call with_duration before scheduling, or move the event",
        duration.as_secs_f64()
    );
    let check_leaf = |leaf: usize| {
        assert!(
            leaf < 27,
            "scenario event at {t}s names leaf {leaf}: the tertiary tree has leaves 0..27"
        );
    };
    let check_session = |session: usize| {
        assert!(
            session < sessions,
            "scenario event at {t}s names session {session}: \
             this spec runs {sessions} session(s)"
        );
    };
    match &ev.command {
        EventCommand::ReceiverJoin { session, leaf }
        | EventCommand::ReceiverLeave { session, leaf } => {
            check_session(*session);
            check_leaf(*leaf);
        }
        EventCommand::LinkDegrade {
            link,
            loss,
            bandwidth_pps,
        } => {
            assert!(
                !link.is_empty(),
                "scenario event at {t}s: LinkDegrade needs a link label (e.g. \"L2.1\")"
            );
            assert!(
                (0.0..=1.0).contains(loss),
                "scenario event at {t}s: injected loss rate {loss} outside 0.0..=1.0"
            );
            if let Some(bw) = bandwidth_pps {
                assert!(
                    *bw > 0,
                    "scenario event at {t}s: degraded bandwidth must be positive"
                );
            }
        }
        EventCommand::LinkRestore { link } => {
            assert!(
                !link.is_empty(),
                "scenario event at {t}s: LinkRestore needs a link label (e.g. \"L2.1\")"
            );
        }
        EventCommand::StartBackgroundFlow { leaf, packets } => {
            check_leaf(*leaf);
            assert!(
                *packets > 0,
                "scenario event at {t}s: a background burst must carry packets"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rla::PthreshPolicy;

    #[test]
    fn builder_order_does_not_matter() {
        let d = SimDuration::from_secs(90);
        let a = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_seed(7)
            .with_duration(d)
            .with_gateway(GatewayKind::Red)
            .build();
        let b = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_gateway(GatewayKind::Red)
            .with_duration(d)
            .with_seed(7)
            .build();
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.duration, b.duration);
        assert_eq!(a.warmup, b.warmup);
        assert_eq!(a.gateway, b.gateway);
    }

    #[test]
    fn matches_hand_built_tree_scenario() {
        let d = SimDuration::from_secs(60);
        let via_spec = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(d)
            .with_seed(1)
            .build();
        let by_hand = TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::DropTail)
            .with_duration(d)
            .with_seed(1);
        assert_eq!(via_spec.seed, by_hand.seed);
        assert_eq!(via_spec.duration, by_hand.duration);
        assert_eq!(via_spec.warmup, by_hand.warmup);
        assert_eq!(via_spec.rla_sessions, by_hand.rla_sessions);
    }

    #[test]
    fn paper_pthresh_policy_survives_other_overrides() {
        let s = ScenarioSpec::paper(CongestionCase::Case1RootLink)
            .with_sessions(2)
            .with_duration(SimDuration::from_secs(60))
            .build();
        assert_eq!(s.rla_sessions, 2);
        assert_eq!(s.rla_config.pthresh_policy, PthreshPolicy::Equal);
        let g3 = ScenarioSpec::paper(CongestionCase::Fig10AllLevel2).build();
        assert_ne!(g3.rla_config.pthresh_policy, PthreshPolicy::Equal);
    }

    #[test]
    fn events_are_sorted_with_a_stable_tie_break() {
        let s = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(60))
            .with_event(ScenarioEvent::leave(30.0, 0, 1))
            .with_event(ScenarioEvent::leave(10.0, 0, 0))
            .with_event(ScenarioEvent::leave(30.0, 0, 2))
            .build();
        assert_eq!(
            s.events,
            vec![
                ScenarioEvent::leave(10.0, 0, 0),
                // Equal timestamps keep their schedule order (FIFO).
                ScenarioEvent::leave(30.0, 0, 1),
                ScenarioEvent::leave(30.0, 0, 2),
            ]
        );
    }

    #[test]
    fn churn_rate_synthesizes_a_deterministic_schedule() {
        let spec = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(120))
            .with_churn_rate(0.5);
        let a = spec.build();
        let b = spec.build();
        assert!(!a.events.is_empty(), "0.5 Hz over 100 s should churn");
        assert_eq!(a.events, b.events);
        let other_seed = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(120))
            .with_seed(9)
            .with_churn_rate(0.5)
            .build();
        assert_ne!(a.events, other_seed.events, "churn must track the seed");
    }

    #[test]
    #[should_panic(expected = "outside the run")]
    fn event_after_the_run_ends_is_rejected_at_build_time() {
        ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(60))
            .with_event(ScenarioEvent::leave(60.0, 0, 0))
            .build();
    }

    #[test]
    #[should_panic(expected = "outside the run")]
    fn event_at_time_zero_is_rejected_at_build_time() {
        ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(60))
            .with_event(ScenarioEvent::join(0.0, 0, 0))
            .build();
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn degrade_with_out_of_range_loss_is_rejected_at_build_time() {
        ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(60))
            .with_event(ScenarioEvent::degrade(30.0, "L2.1", 1.5, None))
            .build();
    }

    #[test]
    #[should_panic(expected = "session 3")]
    fn event_naming_a_missing_session_is_rejected_at_build_time() {
        ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(60))
            .with_event(ScenarioEvent::leave(30.0, 3, 0))
            .build();
    }

    #[test]
    fn rla_config_override_replaces_wholesale() {
        let cfg = RlaConfig {
            eta: 0.42,
            ..RlaConfig::default()
        };
        let s = ScenarioSpec::paper(CongestionCase::Case2AllLevel3)
            .with_rla_config(cfg.clone())
            .build();
        assert_eq!(s.rla_config.eta, cfg.eta);
        assert_eq!(s.rla_config.pthresh_policy, cfg.pthresh_policy);
    }
}
