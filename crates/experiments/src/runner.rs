//! Execution helpers for the experiment binaries.
//!
//! Environment knobs (`RLA_DURATION_SECS`, `RLA_SEED`, `RLA_JOBS`) are
//! parsed in [`crate::cli`]; this module only runs the batches.
//!
//! Independent runs execute on a fixed-size worker pool (the engine
//! itself is single-threaded for determinism). Because every scenario is
//! a pure function of its parameters and seed, the pool's scheduling
//! cannot affect results: `run_parallel` returns bit-identical
//! [`ScenarioResult`]s — including trace digests — for any job count,
//! in input order.
//!
//! With `RLA_PROGRESS=1` each completed job prints a heartbeat line to
//! stderr (events processed, per-job event rate, ETA for the batch) via
//! [`telemetry::SweepProgress`] — stdout stays reserved for the result
//! tables. With `RLA_PROGRESS_FILE=<path>` each completion additionally
//! appends a JSON heartbeat (case, seed, event rate, ETA) to that file,
//! flushed per line, which is what `rla_top` follows during a sweep.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;
use std::thread;
use std::time::Instant;

use telemetry::{JobMeta, SweepProgress};

use crate::cli::{job_count, progress_enabled, progress_sink};
use crate::metrics::ScenarioResult;
use crate::scenario::TreeScenario;

/// Run scenarios on a fixed-size worker pool (see [`job_count`]) and
/// return the results in input order.
///
/// Panics propagate *after* every other scenario has finished, with the
/// index and label of each failed scenario, so one bad configuration in
/// a sweep doesn't discard the rest of the batch's work.
pub fn run_parallel(scenarios: Vec<TreeScenario>) -> Vec<ScenarioResult> {
    run_parallel_with_jobs(scenarios, job_count())
}

/// [`run_parallel`] with an explicit worker count — used by tests to
/// prove results are independent of the pool size without touching the
/// process environment.
pub fn run_parallel_with_jobs(scenarios: Vec<TreeScenario>, jobs: usize) -> Vec<ScenarioResult> {
    let n = scenarios.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.max(1).min(n);

    // Labels survive for panic reporting even when the run is consumed.
    let labels: Vec<String> = scenarios
        .iter()
        .map(|s| format!("{} {:?} seed {}", s.case.label(), s.gateway, s.seed))
        .collect();
    // Structured identity for the JSONL heartbeat sink.
    let metas: Vec<(String, u64)> = scenarios
        .iter()
        .map(|s| (s.case.label().to_string(), s.seed))
        .collect();

    let queue: Mutex<VecDeque<(usize, TreeScenario)>> =
        Mutex::new(scenarios.into_iter().enumerate().collect());
    let slots: Vec<Mutex<Option<thread::Result<ScenarioResult>>>> =
        (0..n).map(|_| Mutex::new(None)).collect();
    let mut progress = SweepProgress::new(n, progress_enabled());
    if let Some(sink) = progress_sink() {
        progress = progress.with_sink(sink);
    }

    thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| loop {
                let next = queue.lock().expect("work queue poisoned").pop_front();
                let Some((idx, scenario)) = next else { break };
                // One panicking scenario must not tear down the pool:
                // isolate it and keep draining the queue.
                let started = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(|| scenario.run()));
                if let Ok(r) = &outcome {
                    let (case, seed) = &metas[idx];
                    progress.job_finished_with(
                        &labels[idx],
                        Some(JobMeta { case, seed: *seed }),
                        r.trace_events,
                        started.elapsed(),
                    );
                }
                *slots[idx].lock().expect("result slot poisoned") = Some(outcome);
            });
        }
    });

    let mut results = Vec::with_capacity(n);
    let mut failures = Vec::new();
    for (idx, slot) in slots.into_iter().enumerate() {
        match slot.into_inner().expect("result slot poisoned") {
            Some(Ok(result)) => results.push(result),
            Some(Err(payload)) => {
                let msg = payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| payload.downcast_ref::<&str>().copied())
                    .unwrap_or("non-string panic payload");
                failures.push(format!("scenario {idx} ({}): {msg}", labels[idx]));
            }
            None => failures.push(format!(
                "scenario {idx} ({}): worker died before running it",
                labels[idx]
            )),
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {n} scenarios panicked:\n  {}",
        failures.len(),
        failures.join("\n  ")
    );
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GatewayKind;
    use crate::tree::CongestionCase;
    use netsim::time::SimDuration;

    fn make() -> TreeScenario {
        TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::DropTail)
            .with_duration(SimDuration::from_secs(60))
    }

    #[test]
    fn parallel_matches_sequential() {
        let seq = make().run();
        let par = run_parallel(vec![make(), make()]);
        // Determinism: same scenario -> identical numbers, in any thread.
        assert_eq!(seq.rla[0].cong_signals, par[0].rla[0].cong_signals);
        assert_eq!(par[0].rla[0].cong_signals, par[1].rla[0].cong_signals);
        assert_eq!(seq.rla[0].window_cuts, par[1].rla[0].window_cuts);
        // And the full event streams, not just headline counters.
        assert_eq!(seq.trace_digest, par[0].trace_digest);
        assert_eq!(par[0].trace_digest, par[1].trace_digest);
        assert_eq!(seq.trace_events, par[0].trace_events);
    }

    #[test]
    fn pool_preserves_input_order() {
        // Different seeds give different digests; order must survive a
        // pool smaller than the batch.
        let batch: Vec<_> = (1..=5).map(|s| make().with_seed(s)).collect();
        let expected: Vec<u64> = batch.iter().map(|s| s.seed).collect();
        let results = run_parallel_with_jobs(batch, 2);
        let got: Vec<u64> = results.iter().map(|r| r.seed).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn panicking_scenario_reports_and_spares_the_rest() {
        // warmup >= duration trips the scenario's own assertion.
        let mut bad = make();
        bad.warmup = bad.duration;
        let err = catch_unwind(AssertUnwindSafe(|| {
            run_parallel_with_jobs(vec![make(), bad], 2)
        }))
        .expect_err("the bad scenario must surface");
        let msg = err
            .downcast_ref::<String>()
            .expect("assert! panics with String");
        assert!(msg.contains("1 of 2 scenarios panicked"), "{msg}");
        assert!(msg.contains("scenario 1"), "{msg}");
    }
}
