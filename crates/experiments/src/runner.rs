//! Execution helpers for the experiment binaries.
//!
//! Paper-length runs are 3000 simulated seconds per case; the regenerator
//! binaries accept a scale factor so CI and quick looks stay cheap:
//!
//! * `RLA_DURATION_SECS` — simulated seconds per run (default 3000, the
//!   paper's length).
//! * `RLA_SEED` — base RNG seed (default 1).
//!
//! Independent runs execute in parallel with one OS thread each (the
//! engine itself is single-threaded for determinism).

use std::thread;

use netsim::time::SimDuration;

use crate::metrics::ScenarioResult;
use crate::scenario::TreeScenario;

/// Simulated duration for paper-table runs, honouring
/// `RLA_DURATION_SECS`.
pub fn run_duration() -> SimDuration {
    let secs = std::env::var("RLA_DURATION_SECS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(3000.0);
    SimDuration::from_secs_f64(secs.max(60.0))
}

/// Base seed, honouring `RLA_SEED`.
pub fn base_seed() -> u64 {
    std::env::var("RLA_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
}

/// Run several scenarios concurrently (one thread each) and return the
/// results in input order.
pub fn run_parallel(scenarios: Vec<TreeScenario>) -> Vec<ScenarioResult> {
    let handles: Vec<_> = scenarios
        .into_iter()
        .map(|s| thread::spawn(move || s.run()))
        .collect();
    handles
        .into_iter()
        .map(|h| h.join().expect("scenario thread panicked"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::GatewayKind;
    use crate::tree::CongestionCase;

    #[test]
    fn parallel_matches_sequential() {
        let make = || {
            TreeScenario::paper(CongestionCase::Case5OneLevel2, GatewayKind::DropTail)
                .with_duration(SimDuration::from_secs(60))
        };
        let seq = make().run();
        let par = run_parallel(vec![make(), make()]);
        // Determinism: same scenario -> identical numbers, in any thread.
        assert_eq!(seq.rla[0].cong_signals, par[0].rla[0].cong_signals);
        assert_eq!(par[0].rla[0].cong_signals, par[1].rla[0].cong_signals);
        assert_eq!(seq.rla[0].window_cuts, par[1].rla[0].window_cuts);
    }

    #[test]
    fn duration_env_floor() {
        // Can't set env vars safely in parallel tests; just check default.
        let d = run_duration();
        assert!(d >= SimDuration::from_secs(60));
    }
}
