//! Result rows collected from a scenario run.

use crate::events::ScenarioEvent;
use crate::scenario::GatewayKind;

/// The RLA sender's row of figure 7/9/10.
#[derive(Debug, Clone)]
pub struct RlaRow {
    /// Average throughput over the measurement window, pkt/s.
    pub throughput_pps: f64,
    /// Time-weighted average congestion window, packets.
    pub cwnd_avg: f64,
    /// Mean RTT of packets delivered to all receivers without
    /// retransmission, seconds.
    pub rtt_avg: f64,
    /// Congestion signals detected from all receivers.
    pub cong_signals: u64,
    /// Congestion signals per receiver (figure 8).
    pub cong_signals_per_receiver: Vec<u64>,
    /// Window cuts taken (randomized + forced).
    pub window_cuts: u64,
    /// Forced cuts alone.
    pub forced_cuts: u64,
    /// Per-receiver ack timeouts.
    pub timeouts: u64,
    /// Retransmissions (multicast + unicast).
    pub retransmits: u64,
}

/// One competing TCP connection's row.
#[derive(Debug, Clone)]
pub struct TcpRow {
    /// Index of the receiver node this connection terminates at.
    pub receiver_index: usize,
    /// Average throughput, pkt/s.
    pub throughput_pps: f64,
    /// Time-weighted average congestion window, packets.
    pub cwnd_avg: f64,
    /// Mean RTT sample, seconds.
    pub rtt_avg: f64,
    /// Window cuts (fast recovery + timeouts) — TCP's congestion signals.
    pub window_cuts: u64,
    /// Timeouts alone.
    pub timeouts: u64,
}

/// Everything measured from one scenario run.
#[derive(Debug, Clone)]
pub struct ScenarioResult {
    /// The paper's congested-link label.
    pub case_label: String,
    /// Gateway type used.
    pub gateway: GatewayKind,
    /// Receiver indices on congested branches (empty = all equal).
    pub congested_leaves: Vec<usize>,
    /// Length of the measurement window, seconds.
    pub measured_secs: f64,
    /// Simulation seed the run used.
    pub seed: u64,
    /// Order-sensitive digest of the full packet-event stream (see
    /// `netsim::trace::TraceDigest`). Two runs with the same digest
    /// enqueued, dropped, transmitted and delivered exactly the same
    /// packets at the same instants.
    pub trace_digest: u64,
    /// Number of trace events folded into `trace_digest`.
    pub trace_events: u64,
    /// The scheduled event sequence the run executed (empty for static
    /// scenarios). Recorded in the manifest so a dynamic run is fully
    /// described by its entry.
    pub events: Vec<ScenarioEvent>,
    /// RLA sessions, in creation order.
    pub rla: Vec<RlaRow>,
    /// TCP connections, in receiver order.
    pub tcp: Vec<TcpRow>,
    /// Snapshot of the run's metric registry: every per-flow counter
    /// block plus network-wide channel aggregates, under one uniform
    /// export path (`telemetry::RegistryExport`). Serialized into the
    /// run manifest's `registry` section.
    pub registry: telemetry::Snapshot,
}

impl ScenarioResult {
    /// The worst-performing competing TCP connection (the paper's WTCP).
    pub fn worst_tcp(&self) -> Option<&TcpRow> {
        self.tcp
            .iter()
            .min_by(|a, b| a.throughput_pps.total_cmp(&b.throughput_pps))
    }

    /// The best-performing competing TCP connection (BTCP).
    pub fn best_tcp(&self) -> Option<&TcpRow> {
        self.tcp
            .iter()
            .max_by(|a, b| a.throughput_pps.total_cmp(&b.throughput_pps))
    }

    /// Mean TCP throughput over all connections.
    pub fn avg_tcp_throughput(&self) -> f64 {
        if self.tcp.is_empty() {
            return 0.0;
        }
        self.tcp.iter().map(|t| t.throughput_pps).sum::<f64>() / self.tcp.len() as f64
    }

    /// The TCP flows on congested branches — the soft-bottleneck
    /// competitors the fairness definition compares against. When every
    /// branch is equally congested this is all of them.
    pub fn bottleneck_tcp(&self) -> Vec<&TcpRow> {
        if self.congested_leaves.is_empty() {
            self.tcp.iter().collect()
        } else {
            self.tcp
                .iter()
                .filter(|t| self.congested_leaves.contains(&t.receiver_index))
                .collect()
        }
    }

    /// Mean throughput of the soft-bottleneck TCP flows.
    pub fn bottleneck_tcp_throughput(&self) -> f64 {
        let rows = self.bottleneck_tcp();
        if rows.is_empty() {
            return 0.0;
        }
        rows.iter().map(|t| t.throughput_pps).sum::<f64>() / rows.len() as f64
    }
}

/// Worst / best / average of a set of per-branch counts (figure 8's rows).
#[derive(Debug, Clone, Copy)]
pub struct BranchSignalStats {
    /// Largest per-branch count.
    pub worst: u64,
    /// Smallest per-branch count.
    pub best: u64,
    /// Mean per-branch count.
    pub average: f64,
}

impl BranchSignalStats {
    /// Summarize a nonempty slice of per-branch counts.
    pub fn from_counts(counts: &[u64]) -> Option<Self> {
        if counts.is_empty() {
            return None;
        }
        Some(BranchSignalStats {
            worst: *counts.iter().max().expect("nonempty"),
            best: *counts.iter().min().expect("nonempty"),
            average: counts.iter().sum::<u64>() as f64 / counts.len() as f64,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result_with_tcp(tputs: &[f64]) -> ScenarioResult {
        ScenarioResult {
            case_label: "test".into(),
            gateway: GatewayKind::DropTail,
            congested_leaves: vec![],
            measured_secs: 1.0,
            seed: 1,
            trace_digest: 0,
            trace_events: 0,
            events: vec![],
            registry: telemetry::Snapshot::default(),
            rla: vec![],
            tcp: tputs
                .iter()
                .enumerate()
                .map(|(i, &t)| TcpRow {
                    receiver_index: i,
                    throughput_pps: t,
                    cwnd_avg: 0.0,
                    rtt_avg: 0.0,
                    window_cuts: 0,
                    timeouts: 0,
                })
                .collect(),
        }
    }

    #[test]
    fn worst_best_avg() {
        let r = result_with_tcp(&[80.0, 120.0, 100.0]);
        assert_eq!(r.worst_tcp().unwrap().throughput_pps, 80.0);
        assert_eq!(r.best_tcp().unwrap().throughput_pps, 120.0);
        assert!((r.avg_tcp_throughput() - 100.0).abs() < 1e-12);
    }

    #[test]
    fn bottleneck_filter() {
        let mut r = result_with_tcp(&[80.0, 120.0, 100.0]);
        r.congested_leaves = vec![1];
        assert_eq!(r.bottleneck_tcp().len(), 1);
        assert_eq!(r.bottleneck_tcp_throughput(), 120.0);
        r.congested_leaves.clear();
        assert_eq!(r.bottleneck_tcp().len(), 3);
    }

    #[test]
    fn branch_stats() {
        let s = BranchSignalStats::from_counts(&[861, 820, 840]).unwrap();
        assert_eq!(s.worst, 861);
        assert_eq!(s.best, 820);
        assert!((s.average - 840.333).abs() < 0.001);
        assert!(BranchSignalStats::from_counts(&[]).is_none());
    }
}
