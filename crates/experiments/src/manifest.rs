//! Run manifests: one JSON file per experiment binary under `results/`.
//!
//! A manifest records everything needed to reproduce and verify a run:
//! the scenario parameters, seed, simulated duration, the engine's
//! [`TraceDigest`](netsim::trace::TraceDigest) over the full packet-event
//! stream, and the headline metrics. Regenerating a figure with the same
//! code, seed and duration must reproduce the digests bit-for-bit — the
//! golden-digest regression tests pin two committed manifests this way.
//!
//! The workspace deliberately has no JSON dependency; the emitter here
//! covers the small subset we need (objects, arrays, strings, numbers)
//! with correct string escaping and round-trippable float formatting.
//! [`Json::parse`] is the matching reader — it accepts anything the
//! emitter produces (and ordinary hand-edited JSON), so tools like
//! `rla_diff` can load manifests back without a new dependency.
//!
//! Output goes to `results/<name>.manifest.json`, or under
//! `RLA_RESULTS_DIR` when set.

use std::fmt;
use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use netsim::time::SimDuration;

use crate::metrics::ScenarioResult;
use crate::scenario::GatewayKind;

/// A JSON value. Build with the `From` impls and [`Json::obj`] /
/// [`Json::arr`]; render with [`Json::pretty`]; read back with
/// [`Json::parse`] and the accessors ([`Json::get`], [`Json::as_f64`],
/// ...).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float (non-finite values render as `null`).
    Num(f64),
    /// An unsigned integer, rendered without a decimal point.
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as u64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// Two-space-indented rendering with a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest string that parses back
                    // to the same value; force a decimal point so the
                    // field stays float-typed for readers.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

/// Error from [`Json::parse`]: the byte offset the parser stopped at and
/// what it expected there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonParseError {}

impl Json {
    /// Parse a JSON document. Integer tokens without sign, fraction or
    /// exponent that fit a `u64` become [`Json::Int`] (the counter type);
    /// every other number becomes [`Json::Num`], matching what the
    /// emitter writes for gauges.
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing data after the JSON value"));
        }
        Ok(v)
    }

    /// Field lookup on an object (first match); `None` on other variants.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value of an `Int` or `Num`; `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            Json::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// The value of an `Int`; `None` otherwise (including `Num`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value of a `Str`; `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The items of an `Arr`; `None` otherwise.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The `(key, value)` fields of an `Obj`; `None` otherwise.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, value: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(b) if b != b'"' && b != b'\\' && b >= 0x20) {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: the low half must follow.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let code =
                                        0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                                    char::from_u32(code)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Four hex digits after `\u`; advances past them.
    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut integral = self.pos > start && self.bytes[start] != b'-';
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if integral {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::Int(v));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| JsonParseError {
                offset: start,
                message: format!("invalid number {text:?}"),
            })
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where manifests go: `RLA_RESULTS_DIR` if set, else `results/` in the
/// current directory (the workspace root under `cargo run`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("RLA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Write `value` to `results/<name>.manifest.json` and return the path.
pub fn write_manifest(name: &str, value: &Json) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.manifest.json"));
    std::fs::write(&path, value.pretty())?;
    Ok(path)
}

fn gateway_str(g: GatewayKind) -> &'static str {
    match g {
        GatewayKind::DropTail => "drop-tail",
        GatewayKind::Red => "red",
    }
}

/// A registry [`Snapshot`](telemetry::Snapshot) as a JSON object:
/// one key per metric, counters as integers, gauges as floats. Entries
/// arrive sorted by name, so the rendering is stable across runs.
pub fn snapshot_json(s: &telemetry::Snapshot) -> Json {
    Json::Obj(
        s.entries
            .iter()
            .map(|e| {
                let v = match e.value {
                    telemetry::MetricValue::Counter(c) => Json::Int(c),
                    telemetry::MetricValue::Gauge(g) => Json::Num(g),
                };
                (e.name.clone(), v)
            })
            .collect(),
    )
}

/// The manifest entry for one scenario run: parameters, digest, the
/// headline metrics every paper table reports, and the full registry
/// snapshot.
pub fn scenario_entry(r: &ScenarioResult) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![
        ("case", r.case_label.as_str().into()),
        ("gateway", gateway_str(r.gateway).into()),
        ("seed", r.seed.into()),
        ("measured_secs", r.measured_secs.into()),
        ("trace_digest", format!("{:016x}", r.trace_digest).into()),
        ("trace_events", r.trace_events.into()),
        (
            "congested_leaves",
            Json::Arr(r.congested_leaves.iter().map(|&i| i.into()).collect()),
        ),
    ];
    // Recorded only for dynamic runs, so the longstanding static
    // manifests (and the golden files) keep their exact byte layout.
    if !r.events.is_empty() {
        fields.push(("events", crate::events::events_json(&r.events)));
    }
    fields.extend(vec![
        (
            "rla_throughput_pps",
            Json::Arr(r.rla.iter().map(|s| s.throughput_pps.into()).collect()),
        ),
        (
            "wtcp_pps",
            r.worst_tcp()
                .map_or(Json::Null, |t| t.throughput_pps.into()),
        ),
        (
            "btcp_pps",
            r.best_tcp().map_or(Json::Null, |t| t.throughput_pps.into()),
        ),
        ("avg_tcp_pps", r.avg_tcp_throughput().into()),
        ("registry", snapshot_json(&r.registry)),
    ]);
    Json::obj(fields)
}

/// Standard manifest for a binary that ran a batch of tree scenarios.
pub fn scenario_manifest(binary: &str, duration: SimDuration, runs: &[ScenarioResult]) -> Json {
    Json::obj(vec![
        ("binary", binary.into()),
        ("duration_secs", duration.as_secs_f64().into()),
        ("runs", Json::Arr(runs.iter().map(scenario_entry).collect())),
    ])
}

/// Build and write the standard scenario manifest; prints the path to
/// stderr (tables go to stdout) and never fails the run over an
/// unwritable results directory.
pub fn emit_scenario_manifest(binary: &str, duration: SimDuration, runs: &[ScenarioResult]) {
    emit(binary, &scenario_manifest(binary, duration, runs));
}

/// Digest of an analysis-only artifact: the same fold the engine applies
/// to trace events, applied to the rendered output bytes. Gives the
/// analytic binaries (eq1, fig4, ...) a regression digest without a
/// packet trace.
pub fn text_digest(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
    }
    h
}

/// Manifest for an analysis-only binary (no simulation): digests the
/// rendered output and records the parameters given as `extra` fields.
pub fn analysis_manifest(binary: &str, output: &str, extra: Vec<(&str, Json)>) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![
        ("binary", binary.into()),
        (
            "output_digest",
            format!("{:016x}", text_digest(output)).into(),
        ),
        ("output_bytes", output.len().into()),
    ];
    fields.extend(extra);
    Json::obj(fields)
}

/// Build and write an analysis-only manifest (see [`analysis_manifest`]).
pub fn emit_analysis_manifest(binary: &str, output: &str, extra: Vec<(&str, Json)>) {
    emit(binary, &analysis_manifest(binary, output, extra));
}

fn emit(binary: &str, value: &Json) {
    match write_manifest(binary, value) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write {binary}.manifest.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TcpRow;

    #[test]
    fn renders_escapes_and_numbers() {
        let j = Json::obj(vec![
            ("s", "a\"b\\c\nd".into()),
            ("f", 1.5.into()),
            ("whole", 3.0.into()),
            ("i", 7u64.into()),
            ("nan", f64::NAN.into()),
            ("arr", Json::arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::obj(vec![])),
        ]);
        let s = j.pretty();
        assert!(s.contains(r#""s": "a\"b\\c\nd""#), "{s}");
        assert!(s.contains(r#""f": 1.5"#), "{s}");
        assert!(s.contains(r#""whole": 3.0"#), "floats keep a point: {s}");
        assert!(s.contains(r#""i": 7"#), "{s}");
        assert!(s.contains(r#""nan": null"#), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn parse_round_trips_the_emitter() {
        let j = Json::obj(vec![
            ("s", "a\"b\\c\nd — ünïcode".into()),
            ("f", 1.5.into()),
            ("neg", Json::Num(-2.25)),
            ("whole", 3.0.into()),
            ("i", u64::MAX.into()),
            ("nan", f64::NAN.into()),
            (
                "arr",
                Json::arr(vec![Json::Bool(true), Json::Null, 7u64.into()]),
            ),
            ("empty_obj", Json::obj(vec![])),
            ("empty_arr", Json::arr(vec![])),
        ]);
        let text = j.pretty();
        let back = Json::parse(&text).expect("round trip");
        // NaN was emitted as null, so compare the re-rendered text.
        assert_eq!(back.pretty(), text);
        // Counters stay integers, gauges stay floats.
        assert_eq!(back.get("i").and_then(Json::as_u64), Some(u64::MAX));
        assert!(matches!(back.get("whole"), Some(Json::Num(v)) if *v == 3.0));
        assert_eq!(
            back.get("s").and_then(Json::as_str),
            Some("a\"b\\c\nd — ünïcode")
        );
        assert_eq!(
            back.get("arr").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
    }

    #[test]
    fn parse_accepts_escapes_and_rejects_garbage() {
        let v = Json::parse(r#"{"k": "Aé😀\t"}"#).expect("escapes");
        assert_eq!(v.get("k").and_then(Json::as_str), Some("Aé😀\t"));
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\": 1,}",
            "-",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad:?}");
        }
        let err = Json::parse("[1, x]").unwrap_err();
        assert!(err.to_string().contains("at byte 4"), "{err}");
    }

    #[test]
    fn accessors_navigate_the_manifest_schema() {
        let text = "{\n  \"binary\": \"fig7\",\n  \"runs\": [\n    {\"seed\": 3, \"registry\": {\"net.offered\": 10, \"chan.L1.utilization\": 0.5}}\n  ]\n}\n";
        let m = Json::parse(text).expect("parse");
        assert_eq!(m.get("binary").and_then(Json::as_str), Some("fig7"));
        let run = &m.get("runs").and_then(Json::as_arr).expect("runs")[0];
        assert_eq!(run.get("seed").and_then(Json::as_u64), Some(3));
        let reg = run
            .get("registry")
            .and_then(Json::as_obj)
            .expect("registry");
        assert_eq!(reg.len(), 2);
        assert_eq!(
            run.get("registry")
                .and_then(|r| r.get("chan.L1.utilization"))
                .and_then(Json::as_f64),
            Some(0.5)
        );
        assert_eq!(m.get("missing"), None);
        assert_eq!(m.get("runs").and_then(Json::as_str), None);
    }

    #[test]
    fn text_digest_is_stable_and_sensitive() {
        assert_eq!(text_digest("abc"), text_digest("abc"));
        assert_ne!(text_digest("abc"), text_digest("abd"));
        assert_ne!(text_digest("ab"), text_digest("abc"));
    }

    #[test]
    fn scenario_entry_includes_digest_and_metrics() {
        let r = ScenarioResult {
            case_label: "L1".into(),
            gateway: GatewayKind::Red,
            congested_leaves: vec![2],
            measured_secs: 50.0,
            seed: 9,
            trace_digest: 0xdead_beef,
            trace_events: 4,
            registry: {
                let mut reg = telemetry::Registry::new();
                reg.record_count("rla.0.delivered", 42);
                reg.record_gauge("chan.L1.utilization", 0.75);
                reg.snapshot()
            },
            events: vec![],
            rla: vec![],
            tcp: vec![TcpRow {
                receiver_index: 0,
                throughput_pps: 80.0,
                cwnd_avg: 0.0,
                rtt_avg: 0.0,
                window_cuts: 0,
                timeouts: 0,
            }],
        };
        let s = scenario_entry(&r).pretty();
        assert!(s.contains(r#""trace_digest": "00000000deadbeef""#), "{s}");
        assert!(s.contains(r#""gateway": "red""#), "{s}");
        assert!(s.contains(r#""seed": 9"#), "{s}");
        assert!(s.contains(r#""wtcp_pps": 80.0"#), "{s}");
    }
}
