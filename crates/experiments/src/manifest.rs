//! Run manifests: one JSON file per experiment binary under `results/`.
//!
//! A manifest records everything needed to reproduce and verify a run:
//! the scenario parameters, seed, simulated duration, the engine's
//! [`TraceDigest`](netsim::trace::TraceDigest) over the full packet-event
//! stream, and the headline metrics. Regenerating a figure with the same
//! code, seed and duration must reproduce the digests bit-for-bit — the
//! golden-digest regression tests pin two committed manifests this way.
//!
//! The workspace deliberately has no JSON dependency; the emitter here
//! covers the small subset we need (objects, arrays, strings, numbers)
//! with correct string escaping and round-trippable float formatting.
//!
//! Output goes to `results/<name>.manifest.json`, or under
//! `RLA_RESULTS_DIR` when set.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

use netsim::time::SimDuration;

use crate::metrics::ScenarioResult;
use crate::scenario::GatewayKind;

/// A JSON value. Build with the `From` impls and [`Json::obj`] /
/// [`Json::arr`]; render with [`Json::pretty`].
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A float (non-finite values render as `null`).
    Num(f64),
    /// An unsigned integer, rendered without a decimal point.
    Int(u64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::Int(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::Int(v as u64)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Self {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Self {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Self {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// An object from `(key, value)` pairs, preserving order.
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// An array.
    pub fn arr(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }

    /// Two-space-indented rendering with a trailing newline.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.render(&mut out, 0);
        out.push('\n');
        out
    }

    fn render(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(v) => {
                if v.is_finite() {
                    // `{}` on f64 is the shortest string that parses back
                    // to the same value; force a decimal point so the
                    // field stays float-typed for readers.
                    let s = format!("{v}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Str(s) => escape_into(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.render(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    escape_into(k, out);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Where manifests go: `RLA_RESULTS_DIR` if set, else `results/` in the
/// current directory (the workspace root under `cargo run`).
pub fn results_dir() -> PathBuf {
    std::env::var_os("RLA_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Write `value` to `results/<name>.manifest.json` and return the path.
pub fn write_manifest(name: &str, value: &Json) -> io::Result<PathBuf> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.manifest.json"));
    std::fs::write(&path, value.pretty())?;
    Ok(path)
}

fn gateway_str(g: GatewayKind) -> &'static str {
    match g {
        GatewayKind::DropTail => "drop-tail",
        GatewayKind::Red => "red",
    }
}

/// A registry [`Snapshot`](telemetry::Snapshot) as a JSON object:
/// one key per metric, counters as integers, gauges as floats. Entries
/// arrive sorted by name, so the rendering is stable across runs.
pub fn snapshot_json(s: &telemetry::Snapshot) -> Json {
    Json::Obj(
        s.entries
            .iter()
            .map(|e| {
                let v = match e.value {
                    telemetry::MetricValue::Counter(c) => Json::Int(c),
                    telemetry::MetricValue::Gauge(g) => Json::Num(g),
                };
                (e.name.clone(), v)
            })
            .collect(),
    )
}

/// The manifest entry for one scenario run: parameters, digest, the
/// headline metrics every paper table reports, and the full registry
/// snapshot.
pub fn scenario_entry(r: &ScenarioResult) -> Json {
    Json::obj(vec![
        ("case", r.case_label.as_str().into()),
        ("gateway", gateway_str(r.gateway).into()),
        ("seed", r.seed.into()),
        ("measured_secs", r.measured_secs.into()),
        ("trace_digest", format!("{:016x}", r.trace_digest).into()),
        ("trace_events", r.trace_events.into()),
        (
            "congested_leaves",
            Json::Arr(r.congested_leaves.iter().map(|&i| i.into()).collect()),
        ),
        (
            "rla_throughput_pps",
            Json::Arr(r.rla.iter().map(|s| s.throughput_pps.into()).collect()),
        ),
        (
            "wtcp_pps",
            r.worst_tcp()
                .map_or(Json::Null, |t| t.throughput_pps.into()),
        ),
        (
            "btcp_pps",
            r.best_tcp().map_or(Json::Null, |t| t.throughput_pps.into()),
        ),
        ("avg_tcp_pps", r.avg_tcp_throughput().into()),
        ("registry", snapshot_json(&r.registry)),
    ])
}

/// Standard manifest for a binary that ran a batch of tree scenarios.
pub fn scenario_manifest(binary: &str, duration: SimDuration, runs: &[ScenarioResult]) -> Json {
    Json::obj(vec![
        ("binary", binary.into()),
        ("duration_secs", duration.as_secs_f64().into()),
        ("runs", Json::Arr(runs.iter().map(scenario_entry).collect())),
    ])
}

/// Build and write the standard scenario manifest; prints the path to
/// stderr (tables go to stdout) and never fails the run over an
/// unwritable results directory.
pub fn emit_scenario_manifest(binary: &str, duration: SimDuration, runs: &[ScenarioResult]) {
    emit(binary, &scenario_manifest(binary, duration, runs));
}

/// Digest of an analysis-only artifact: the same fold the engine applies
/// to trace events, applied to the rendered output bytes. Gives the
/// analytic binaries (eq1, fig4, ...) a regression digest without a
/// packet trace.
pub fn text_digest(text: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in text.as_bytes() {
        h = (h ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 29;
    }
    h
}

/// Manifest for an analysis-only binary (no simulation): digests the
/// rendered output and records the parameters given as `extra` fields.
pub fn analysis_manifest(binary: &str, output: &str, extra: Vec<(&str, Json)>) -> Json {
    let mut fields: Vec<(&str, Json)> = vec![
        ("binary", binary.into()),
        (
            "output_digest",
            format!("{:016x}", text_digest(output)).into(),
        ),
        ("output_bytes", output.len().into()),
    ];
    fields.extend(extra);
    Json::obj(fields)
}

/// Build and write an analysis-only manifest (see [`analysis_manifest`]).
pub fn emit_analysis_manifest(binary: &str, output: &str, extra: Vec<(&str, Json)>) {
    emit(binary, &analysis_manifest(binary, output, extra));
}

fn emit(binary: &str, value: &Json) {
    match write_manifest(binary, value) {
        Ok(path) => eprintln!("manifest: {}", path.display()),
        Err(e) => eprintln!("manifest: could not write {binary}.manifest.json: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TcpRow;

    #[test]
    fn renders_escapes_and_numbers() {
        let j = Json::obj(vec![
            ("s", "a\"b\\c\nd".into()),
            ("f", 1.5.into()),
            ("whole", 3.0.into()),
            ("i", 7u64.into()),
            ("nan", f64::NAN.into()),
            ("arr", Json::arr(vec![Json::Bool(true), Json::Null])),
            ("empty", Json::obj(vec![])),
        ]);
        let s = j.pretty();
        assert!(s.contains(r#""s": "a\"b\\c\nd""#), "{s}");
        assert!(s.contains(r#""f": 1.5"#), "{s}");
        assert!(s.contains(r#""whole": 3.0"#), "floats keep a point: {s}");
        assert!(s.contains(r#""i": 7"#), "{s}");
        assert!(s.contains(r#""nan": null"#), "{s}");
        assert!(s.ends_with("}\n"), "{s}");
    }

    #[test]
    fn text_digest_is_stable_and_sensitive() {
        assert_eq!(text_digest("abc"), text_digest("abc"));
        assert_ne!(text_digest("abc"), text_digest("abd"));
        assert_ne!(text_digest("ab"), text_digest("abc"));
    }

    #[test]
    fn scenario_entry_includes_digest_and_metrics() {
        let r = ScenarioResult {
            case_label: "L1".into(),
            gateway: GatewayKind::Red,
            congested_leaves: vec![2],
            measured_secs: 50.0,
            seed: 9,
            trace_digest: 0xdead_beef,
            trace_events: 4,
            registry: {
                let mut reg = telemetry::Registry::new();
                reg.record_count("rla.0.delivered", 42);
                reg.record_gauge("chan.L1.utilization", 0.75);
                reg.snapshot()
            },
            rla: vec![],
            tcp: vec![TcpRow {
                receiver_index: 0,
                throughput_pps: 80.0,
                cwnd_avg: 0.0,
                rtt_avg: 0.0,
                window_cuts: 0,
                timeouts: 0,
            }],
        };
        let s = scenario_entry(&r).pretty();
        assert!(s.contains(r#""trace_digest": "00000000deadbeef""#), "{s}");
        assert!(s.contains(r#""gateway": "red""#), "{s}");
        assert!(s.contains(r#""seed": 9"#), "{s}");
        assert!(s.contains(r#""wtcp_pps": 80.0"#), "{s}");
    }
}
