//! The paper's figure-1 "restricted topology" as a flat star.
//!
//! One sender node S and `n` receiver nodes, each reached over an
//! independent virtual link `L_i` with its own capacity, delay and
//! (optionally) Bernoulli loss. This is the shape of the §4 analysis —
//! equal RTTs, per-branch bottlenecks — and the setup of figure 5's full
//! simulation (footnote 11: every path a delay-bandwidth product of 60).

use netsim::engine::Engine;
use netsim::fault::FaultInjector;
use netsim::id::{ChannelId, NodeId};
use netsim::queue::QueueConfig;
use netsim::time::SimDuration;

/// One branch of the star.
#[derive(Debug, Clone)]
pub struct BranchSpec {
    /// Link capacity, bits per second.
    pub bandwidth_bps: u64,
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Optional Bernoulli data loss on the downstream direction (the §4
    /// "independent loss path" model).
    pub drop_prob: f64,
}

impl BranchSpec {
    /// A clean branch.
    pub fn new(bandwidth_bps: u64, delay: SimDuration) -> Self {
        BranchSpec {
            bandwidth_bps,
            delay,
            drop_prob: 0.0,
        }
    }

    /// The same branch with Bernoulli data loss.
    pub fn with_loss(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Figure 5's branch: delay-bandwidth product of 60 packets
    /// (600 pkt/s at 50 ms one-way → RTT 0.1 s).
    pub fn fig5() -> Self {
        BranchSpec::new(4_800_000, SimDuration::from_millis(50))
    }
}

/// The built star.
#[derive(Debug)]
pub struct Star {
    /// The sender-side hub node.
    pub root: NodeId,
    /// Receiver nodes, in branch order.
    pub leaves: Vec<NodeId>,
    /// Downstream channels (root → leaf), in branch order.
    pub down: Vec<ChannelId>,
    /// Upstream channels (leaf → root), in branch order.
    pub up: Vec<ChannelId>,
}

/// Build a star from per-branch specs, with `queue` on every buffer.
pub fn build_star(engine: &mut Engine, branches: &[BranchSpec], queue: &QueueConfig) -> Star {
    assert!(!branches.is_empty(), "a star needs at least one branch");
    let root = engine.add_node("S");
    let mut leaves = Vec::new();
    let mut down = Vec::new();
    let mut up = Vec::new();
    for (i, b) in branches.iter().enumerate() {
        let leaf = engine.add_node(format!("R{}", i + 1));
        let (d, u) = engine.add_link(root, leaf, b.bandwidth_bps, b.delay, queue);
        if b.drop_prob > 0.0 {
            engine.set_fault(d, FaultInjector::new(b.drop_prob).data_only());
        }
        leaves.push(leaf);
        down.push(d);
        up.push(u);
    }
    Star {
        root,
        leaves,
        down,
        up,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn star_shape() {
        let mut e = Engine::new(0);
        let branches = vec![BranchSpec::fig5(); 27];
        let s = build_star(&mut e, &branches, &QueueConfig::paper_droptail());
        assert_eq!(s.leaves.len(), 27);
        assert_eq!(e.world().channel_count(), 54);
        e.compute_routes();
        for &leaf in &s.leaves {
            assert!(e.world().node(s.root).route_to(leaf).is_some());
            assert!(e.world().node(leaf).route_to(s.root).is_some());
        }
    }

    #[test]
    fn lossy_branch_gets_fault_injector() {
        let mut e = Engine::new(0);
        let branches = vec![BranchSpec::fig5(), BranchSpec::fig5().with_loss(0.05)];
        let s = build_star(&mut e, &branches, &QueueConfig::paper_droptail());
        assert!(e.world().channel(s.down[0]).fault.is_none());
        assert!(e.world().channel(s.down[1]).fault.is_some());
    }

    #[test]
    fn fig5_branch_has_bdp_60() {
        let b = BranchSpec::fig5();
        // 600 pkt/s * 0.1 s RTT = 60 packets.
        let pps = b.bandwidth_bps as f64 / 8000.0;
        let rtt = 2.0 * b.delay.as_secs_f64();
        assert!((pps * rtt - 60.0).abs() < 1e-9);
    }
}
