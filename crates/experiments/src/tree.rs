//! The paper's figure-6 topology: a four-level tertiary tree.
//!
//! ```text
//! S --L1-- G1 --L2j-- G2j (x3) --L3k-- G3k (x9) --L4l-- Rl (x27)
//! ```
//!
//! One-way propagation delays: 5 ms on levels 1–3, 100 ms on level 4
//! (leaf) links, so the base RTT to a leaf is 2·(5+5+5+100) = 230 ms.
//! Non-bottleneck links run at 100 Mbps; the congested links of each case
//! are sized so that the soft-bottleneck share `min μ_i/(m_i+1)` is 100
//! packets per second. All gateways buffer 20 packets.

use netsim::engine::Engine;
use netsim::id::{ChannelId, NodeId};
use netsim::queue::QueueConfig;
use netsim::time::SimDuration;

/// Packets per second → bits per second for the paper's 1000-byte packets.
pub const fn pps_to_bps(pps: u64) -> u64 {
    pps * 8 * 1000
}

/// Speed of all uncongested links.
pub const FAST_BPS: u64 = 100_000_000;

/// The soft-bottleneck per-connection share every case is normalized to.
pub const TARGET_SHARE_PPS: f64 = 100.0;

/// The five congestion placements of figures 7–9, plus the two unequal-RTT
/// cases of figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CongestionCase {
    /// Case 1: the root link L1 is the bottleneck (fully correlated
    /// losses). 27 TCPs + 1 multicast share it: μ = 2800 pkt/s.
    Case1RootLink,
    /// Case 2: all nine level-3 links (partially correlated). 3 TCPs + 1
    /// multicast each: μ = 400 pkt/s.
    Case2AllLevel3,
    /// Case 3: all 27 leaf links (independent losses). 1 TCP + 1 multicast
    /// each: μ = 200 pkt/s.
    Case3AllLeaves,
    /// Case 4: only leaf links 1–5 congested at 200 pkt/s.
    Case4FiveLeaves,
    /// Case 5: the single level-2 link L21. 9 TCPs + 1 multicast:
    /// μ = 1000 pkt/s.
    Case5OneLevel2,
    /// Figure 10 case 1: all three level-2 links, with the G3 gateways
    /// also hosting *multicast* receivers (TCP stays leaf-only, as the
    /// paper's near-equal WTCP/BTCP shows): 9 TCPs + 1 multicast per L2
    /// link, μ = 1000 pkt/s.
    Fig10AllLevel2,
    /// Figure 10 case 2: all nine level-3 links with G3 multicast
    /// receivers (3 TCPs + 1 multicast each: μ = 400 pkt/s).
    Fig10AllLevel3,
}

impl CongestionCase {
    /// The five equal-RTT cases in table order.
    pub const FIGURE7_CASES: [CongestionCase; 5] = [
        CongestionCase::Case1RootLink,
        CongestionCase::Case2AllLevel3,
        CongestionCase::Case3AllLeaves,
        CongestionCase::Case4FiveLeaves,
        CongestionCase::Case5OneLevel2,
    ];

    /// The paper's label for the congested-link set.
    pub fn label(&self) -> &'static str {
        match self {
            CongestionCase::Case1RootLink => "L1",
            CongestionCase::Case2AllLevel3 => "L3i, i=1..9",
            CongestionCase::Case3AllLeaves => "L4i, i=1..27",
            CongestionCase::Case4FiveLeaves => "L4i, i=1..5",
            CongestionCase::Case5OneLevel2 => "L21",
            CongestionCase::Fig10AllLevel2 => "L2i, i=1..3",
            CongestionCase::Fig10AllLevel3 => "L3i, i=1..9",
        }
    }

    /// Whether this case adds the G3 gateways as receivers (figure 10's
    /// unequal-RTT population of 36).
    pub fn has_g3_receivers(&self) -> bool {
        matches!(
            self,
            CongestionCase::Fig10AllLevel2 | CongestionCase::Fig10AllLevel3
        )
    }

    /// The smallest congested-link bandwidth (used to size the random
    /// processing overhead that removes phase effects).
    pub fn bottleneck_pps(&self) -> u64 {
        match self {
            CongestionCase::Case1RootLink => 2800,
            CongestionCase::Case2AllLevel3 => 400,
            CongestionCase::Case3AllLeaves | CongestionCase::Case4FiveLeaves => 200,
            CongestionCase::Case5OneLevel2 => 1000,
            CongestionCase::Fig10AllLevel2 => 1000,
            CongestionCase::Fig10AllLevel3 => 400,
        }
    }
}

/// The built tree: node and channel handles for scenario wiring.
#[derive(Debug)]
pub struct TertiaryTree {
    /// The sender-side root node S.
    pub root: NodeId,
    /// The level-1 gateway G1.
    pub g1: NodeId,
    /// Level-2 gateways G21–G23.
    pub g2: Vec<NodeId>,
    /// Level-3 gateways G31–G39.
    pub g3: Vec<NodeId>,
    /// Leaf receiver nodes R1–R27.
    pub leaves: Vec<NodeId>,
    /// Downstream channel of L1 (root → G1).
    pub l1_down: ChannelId,
    /// Downstream channels of L2j (G1 → G2j).
    pub l2_down: Vec<ChannelId>,
    /// Downstream channels of L3k (G2 → G3k).
    pub l3_down: Vec<ChannelId>,
    /// Downstream channels of L4l (G3 → Rl).
    pub l4_down: Vec<ChannelId>,
    /// The case the link speeds were configured for.
    pub case: CongestionCase,
}

impl TertiaryTree {
    /// Leaf indices on congested branches ("more congested" receivers in
    /// figure 8's grouping). Empty means *all* are equally congested.
    pub fn congested_leaves(&self) -> Vec<usize> {
        match self.case {
            CongestionCase::Case4FiveLeaves => (0..5).collect(),
            CongestionCase::Case5OneLevel2 => (0..9).collect(),
            _ => Vec::new(),
        }
    }

    /// The congested downstream channels of this case, labeled like the
    /// paper's link names (`L1`, `L2.1`, `L3.4`, `L4.12`) — the buffers
    /// worth watching in a queue-occupancy timeline.
    pub fn congested_channels(&self) -> Vec<(String, ChannelId)> {
        let level = |prefix: &str, chans: &[ChannelId]| {
            chans
                .iter()
                .enumerate()
                .map(|(i, &c)| (format!("{prefix}.{}", i + 1), c))
                .collect::<Vec<_>>()
        };
        match self.case {
            CongestionCase::Case1RootLink => vec![("L1".to_string(), self.l1_down)],
            CongestionCase::Case2AllLevel3 | CongestionCase::Fig10AllLevel3 => {
                level("L3", &self.l3_down)
            }
            CongestionCase::Case3AllLeaves => level("L4", &self.l4_down),
            CongestionCase::Case4FiveLeaves => level("L4", &self.l4_down[..5]),
            CongestionCase::Case5OneLevel2 => {
                vec![("L2.1".to_string(), self.l2_down[0])]
            }
            CongestionCase::Fig10AllLevel2 => level("L2", &self.l2_down),
        }
    }

    /// Resolve a paper-style link label (`L1`, `L2.1`, `L3.4`, `L4.12`;
    /// 1-based indices, matching [`TertiaryTree::congested_channels`]) to
    /// its downstream channel — the addressing scheme scheduled
    /// `LinkDegrade`/`LinkRestore` events use. Any label, congested or
    /// not, resolves; `None` means the label names no link in this tree.
    pub fn channel_by_label(&self, label: &str) -> Option<ChannelId> {
        if label == "L1" {
            return Some(self.l1_down);
        }
        let (level, idx) = label.split_once('.')?;
        let i: usize = idx.parse().ok()?;
        let chans = match level {
            "L2" => &self.l2_down,
            "L3" => &self.l3_down,
            "L4" => &self.l4_down,
            _ => return None,
        };
        chans.get(i.checked_sub(1)?).copied()
    }

    /// Base (zero-queueing) RTT from the root to leaf receivers.
    pub fn leaf_rtt() -> SimDuration {
        SimDuration::from_millis(2 * (5 + 5 + 5 + 100))
    }

    /// Base RTT from the root to the G3 gateways (figure 10 receivers).
    pub fn g3_rtt() -> SimDuration {
        SimDuration::from_millis(2 * (5 + 5 + 5))
    }
}

/// Build the tree for `case`, with every link buffer using `queue`.
pub fn build_tree(engine: &mut Engine, case: CongestionCase, queue: &QueueConfig) -> TertiaryTree {
    let d5 = SimDuration::from_millis(5);
    let d100 = SimDuration::from_millis(100);

    let root = engine.add_node("S");
    let g1 = engine.add_node("G1");

    // Per-case link speeds (bits per second).
    let l1_bw = match case {
        CongestionCase::Case1RootLink => pps_to_bps(2800),
        _ => FAST_BPS,
    };
    let l2_bw = |j: usize| match case {
        CongestionCase::Case5OneLevel2 if j == 0 => pps_to_bps(1000),
        CongestionCase::Fig10AllLevel2 => pps_to_bps(1000),
        _ => FAST_BPS,
    };
    let l3_bw = |_k: usize| match case {
        CongestionCase::Case2AllLevel3 => pps_to_bps(400),
        CongestionCase::Fig10AllLevel3 => pps_to_bps(400),
        _ => FAST_BPS,
    };
    let l4_bw = |l: usize| match case {
        CongestionCase::Case3AllLeaves => pps_to_bps(200),
        CongestionCase::Case4FiveLeaves if l < 5 => pps_to_bps(200),
        _ => FAST_BPS,
    };

    let (l1_down, _) = engine.add_link(root, g1, l1_bw, d5, queue);

    let mut g2 = Vec::new();
    let mut l2_down = Vec::new();
    for j in 0..3 {
        let n = engine.add_node(format!("G2{}", j + 1));
        let (down, _) = engine.add_link(g1, n, l2_bw(j), d5, queue);
        g2.push(n);
        l2_down.push(down);
    }

    let mut g3 = Vec::new();
    let mut l3_down = Vec::new();
    for k in 0..9 {
        let n = engine.add_node(format!("G3{}", k + 1));
        let (down, _) = engine.add_link(g2[k / 3], n, l3_bw(k), d5, queue);
        g3.push(n);
        l3_down.push(down);
    }

    let mut leaves = Vec::new();
    let mut l4_down = Vec::new();
    for l in 0..27 {
        let n = engine.add_node(format!("R{}", l + 1));
        let (down, _) = engine.add_link(g3[l / 3], n, l4_bw(l), d100, queue);
        leaves.push(n);
        l4_down.push(down);
    }

    TertiaryTree {
        root,
        g1,
        g2,
        g3,
        leaves,
        l1_down,
        l2_down,
        l3_down,
        l4_down,
        case,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_paper_shape() {
        let mut e = Engine::new(0);
        let t = build_tree(
            &mut e,
            CongestionCase::Case1RootLink,
            &QueueConfig::paper_droptail(),
        );
        assert_eq!(t.g2.len(), 3);
        assert_eq!(t.g3.len(), 9);
        assert_eq!(t.leaves.len(), 27);
        // 1 + 3 + 9 + 27 = 40 duplex links -> 80 channels.
        assert_eq!(e.world().channel_count(), 80);
        e.compute_routes();
        for &leaf in &t.leaves {
            assert!(e.world().node(t.root).route_to(leaf).is_some());
        }
    }

    #[test]
    fn case_bandwidths_match_soft_bottleneck_target() {
        // Each case's congested link must give share = 100 pkt/s.
        let mut e = Engine::new(0);
        let t = build_tree(
            &mut e,
            CongestionCase::Case2AllLevel3,
            &QueueConfig::paper_droptail(),
        );
        // L3 carries 3 TCPs + 1 multicast at 400 pkt/s = 3.2 Mbps.
        let bw = e.world().channel(t.l3_down[0]).bandwidth_bps;
        assert_eq!(bw, 3_200_000);
        assert_eq!(bw as f64 / 8000.0 / 4.0, TARGET_SHARE_PPS);
    }

    #[test]
    fn case5_congests_only_the_first_level2_link() {
        let mut e = Engine::new(0);
        let t = build_tree(
            &mut e,
            CongestionCase::Case5OneLevel2,
            &QueueConfig::paper_droptail(),
        );
        assert_eq!(e.world().channel(t.l2_down[0]).bandwidth_bps, 8_000_000);
        assert_eq!(e.world().channel(t.l2_down[1]).bandwidth_bps, FAST_BPS);
        assert_eq!(t.congested_leaves(), (0..9).collect::<Vec<_>>());
    }

    #[test]
    fn leaf_rtt_is_230ms() {
        assert_eq!(TertiaryTree::leaf_rtt(), SimDuration::from_millis(230));
    }
}
