//! Scenario assembly and execution for the paper's evaluation (§5).
//!
//! A [`TreeScenario`] describes one table column: the congestion case,
//! gateway type, RLA session count, and run length. [`TreeScenario::run`]
//! builds the world, wires one TCP connection from the sender node to
//! every receiver node plus the RLA session(s) over the same tree, runs
//! the warmup, resets statistics (the paper discards the first 100 s),
//! completes the run, and extracts per-flow rows.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use netsim::agent::Sink;
use netsim::engine::Engine;
use netsim::id::{AgentId, ChannelId, GroupId};
use netsim::packet::tx_nanos;
use netsim::queue::QueueConfig;
use netsim::time::{SimDuration, SimTime};

use baselines::{BackgroundConfig, BurstSource, PoissonFlowSource};
use rla::{McastReceiver, PthreshPolicy, RlaConfig, RlaSender};

use tcp_sack::{CcVariant, RenoSender, SenderStats, TcpConfig, TcpReceiver, TcpSender};
use telemetry::pcap::PcapTracer;
use telemetry::timeline::SeriesId;
use telemetry::{ChannelSample, FlowProbe, FlowSample, RegistryExport, TimelineRecorder};

use crate::cli::{PcapOptions, TelemetryOptions};
use crate::events::{BackgroundLoad, EventCommand, ScenarioEvent};
use crate::metrics::{RlaRow, ScenarioResult, TcpRow};
use crate::tree::{build_tree, pps_to_bps, CongestionCase, TertiaryTree};

/// Gateway type for every buffer in the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GatewayKind {
    /// FIFO with tail drop; random per-packet processing overhead is added
    /// at the senders to break phase effects (§3.1).
    DropTail,
    /// RED (5/15 thresholds, buffer 20); no random overhead needed.
    Red,
}

impl GatewayKind {
    /// The queue configuration for this gateway type.
    pub fn queue_config(&self) -> QueueConfig {
        match self {
            GatewayKind::DropTail => QueueConfig::paper_droptail(),
            GatewayKind::Red => QueueConfig::paper_red(),
        }
    }
}

/// One experiment configuration.
#[derive(Debug, Clone)]
pub struct TreeScenario {
    /// Which links are congested (and whether G3 nodes host receivers).
    pub case: CongestionCase,
    /// Gateway type on every link.
    pub gateway: GatewayKind,
    /// Number of overlapping RLA sessions (1 for figures 7–10; 2 for §5.2).
    pub rla_sessions: usize,
    /// Simulation seed.
    pub seed: u64,
    /// Total simulated time.
    pub duration: SimDuration,
    /// Statistics discarded before this time (the paper uses 100 s).
    pub warmup: SimDuration,
    /// Full RLA configuration for the sender(s). Figure 10 uses the
    /// RTT-scaled pthresh generalization; the ablation experiment sweeps
    /// η, the forced-cut rule and the burst limit.
    pub rla_config: RlaConfig,
    /// Which congestion controller the background TCP flows run. The
    /// paper's tables use SACK; the Reno variant measures how sensitive
    /// the fairness results are to the TCP flavor.
    pub tcp_cc: CcVariant,
    /// Scheduled mid-run commands (receiver churn, link degradation,
    /// background bursts), sorted by time. Empty for the static paper
    /// scenarios. Populated via `ScenarioSpec::with_events` /
    /// `with_churn_rate`, which also validate the schedule.
    pub events: Vec<ScenarioEvent>,
    /// Poisson short-flow background traffic sharing the tree's links
    /// (`None` for the static paper scenarios).
    pub bg_load: Option<BackgroundLoad>,
    /// Target execution-domain count *and* worker threads for the
    /// partitioned engine (the `RLA_SHARDS` knob; default 1 — the fine
    /// θ-partition merges into one domain and the run dispatches down
    /// the classic sequential loop with zero exchange overhead). The
    /// identity layer — per-region RNG streams, uid tags and digest
    /// lanes — is a pure function of the topology and seed, so this
    /// setting never changes a digest — only wall-clock.
    pub shards: usize,
    /// Measured per-region event counts steering the cost-aware merge
    /// (`None` — the default — falls back to the engine's
    /// bandwidth·fan-out estimate). Execution grouping only; digests
    /// are identical with or without costs.
    pub domain_costs: Option<Vec<u64>>,
}

impl TreeScenario {
    /// The paper's defaults for a figure-7 column: 3000 s runs, 100 s
    /// warmup, one session, equal-RTT pthresh.
    pub fn paper(case: CongestionCase, gateway: GatewayKind) -> Self {
        TreeScenario {
            case,
            gateway,
            rla_sessions: 1,
            seed: 1,
            duration: SimDuration::from_secs(3000),
            warmup: SimDuration::from_secs(100),
            rla_config: RlaConfig {
                pthresh_policy: if case.has_g3_receivers() {
                    PthreshPolicy::paper_rtt_scaled()
                } else {
                    PthreshPolicy::Equal
                },
                ..RlaConfig::default()
            },
            tcp_cc: CcVariant::sack(),
            events: Vec::new(),
            bg_load: None,
            shards: crate::cli::shards(),
            domain_costs: None,
        }
    }

    /// Same scenario scaled to a shorter run (tests, benches). The warmup
    /// shrinks proportionally but never below 20 s — unless that floor
    /// would reach the end of the run, in which case a third of the
    /// duration is discarded instead so very short runs stay valid.
    pub fn with_duration(mut self, duration: SimDuration) -> Self {
        let mut warmup = (duration.as_secs_f64() / 30.0).clamp(20.0, 100.0);
        if warmup >= duration.as_secs_f64() {
            warmup = duration.as_secs_f64() / 3.0;
        }
        self.warmup = SimDuration::from_secs_f64(warmup);
        self.duration = duration;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Override the TCP congestion-control variant.
    pub fn with_tcp_cc(mut self, cc: CcVariant) -> Self {
        self.tcp_cc = cc;
        self
    }

    /// Override the target execution-domain and worker count for the
    /// partitioned engine (results are identical at every value; see the
    /// `shards` field).
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards >= 1, "at least one worker is required");
        self.shards = shards;
        self
    }

    /// Steer the cost-aware merge with measured per-region event counts
    /// (e.g. a previous run's `Engine::region_event_counts`; see the
    /// `domain_costs` field).
    pub fn with_domain_costs(mut self, costs: Vec<u64>) -> Self {
        self.domain_costs = Some(costs);
        self
    }

    /// Build, run and measure. When the `RLA_PCAP` knob is on, the run
    /// additionally writes `<case>_<gateway>_seed<seed>.pcap` into the
    /// capture directory — tracers observe and never feed back, so the
    /// result (and every digest) is identical with capture on or off.
    pub fn run(&self) -> ScenarioResult {
        let pcap = crate::cli::pcap_options();
        assert!(
            !pcap.enabled || self.shards == 1,
            "RLA_PCAP requires RLA_SHARDS=1 (tracers are single-threaded)"
        );
        let mut world = self.build();
        let tracer = if pcap.enabled {
            Some(world.install_pcap(&pcap, &self.pcap_stem()))
        } else {
            None
        };
        let result = world.run(self);
        if let Some(t) = tracer {
            let mut t = t.borrow_mut();
            let path = t.path().to_path_buf();
            t.finish()
                .unwrap_or_else(|e| panic!("RLA_PCAP: cannot write {}: {e}", path.display()));
        }
        result
    }

    /// The capture-file stem for this configuration (filesystem-safe,
    /// unlike the paper-style case labels).
    pub fn pcap_stem(&self) -> String {
        format!("{:?}_{:?}_seed{}", self.case, self.gateway, self.seed)
    }

    /// Build the world without running it (used by tracing experiments).
    pub fn build(&self) -> ScenarioWorld {
        assert!(self.rla_sessions >= 1, "need at least one RLA session");
        assert!(self.warmup < self.duration, "warmup must precede the end");

        let queue = self.gateway.queue_config();
        let mut engine = Engine::new(self.seed);
        let tree = build_tree(&mut engine, self.case, &queue);

        // Partition along the link delays before any agent or event
        // exists. The fine θ-partition (the tree's 5 ms/100 ms propagation
        // delays all clear the default threshold) fixes the identity layer
        // — per-region RNG streams, uid tags and digest lanes — and the
        // merge pass then coalesces those regions into `shards` execution
        // domains, cutting the slowest links first subject to balanced
        // event load. `shards` (the `RLA_SHARDS` knob) also picks how many
        // worker threads walk the merged domains; identity never moves, so
        // every digest is already fixed here regardless of the target.
        engine.partition_merged(None, self.shards, self.domain_costs.as_deref());
        engine.set_workers(self.shards);

        // Multicast receiver nodes: every leaf, plus the G3 gateways for
        // figure 10. TCP connections terminate at the *leaves only* — the
        // paper's figure-10 WTCP and BTCP are nearly equal, which rules
        // out 30 ms-RTT TCP flows on the congested links.
        let mut receiver_nodes = tree.leaves.clone();
        if self.case.has_g3_receivers() {
            receiver_nodes.extend(tree.g3.iter().copied());
        }
        let tcp_nodes = tree.leaves.clone();

        // One TCP connection from S to every leaf.
        let tcp_cfg = TcpConfig::default();
        let mut tcp_receivers = Vec::new();
        let mut tcp_senders = Vec::new();
        for &node in &tcp_nodes {
            let rx = engine.add_agent(node, Box::new(TcpReceiver::new(tcp_cfg.ack_size)));
            // The registry builds the right sender for the configured
            // variant — adding a controller never touches this site.
            let tx = engine.add_agent(tree.root, self.tcp_cc.build_sender(rx, tcp_cfg.clone()));
            tcp_receivers.push(rx);
            tcp_senders.push(tx);
        }

        // RLA session(s): sender at S, receivers at every receiver node.
        let rla_cfg = self.rla_config.clone();
        let mut rla_senders = Vec::new();
        let mut rla_receivers: Vec<Vec<AgentId>> = Vec::new();
        for _ in 0..self.rla_sessions {
            let group = engine.new_group();
            let mut rxs = Vec::new();
            for &node in &receiver_nodes {
                let rx = engine.add_agent(node, Box::new(McastReceiver::new(rla_cfg.ack_size)));
                engine.join_group(group, rx);
                rxs.push(rx);
            }
            let tx = engine.add_agent(tree.root, Box::new(RlaSender::new(group, rla_cfg.clone())));
            rla_senders.push(tx);
            rla_receivers.push(rxs);
        }

        engine.compute_routes();
        // Each session's group was created in order 0..rla_sessions; build
        // every source tree rooted at S.
        for gid in 0..self.rla_sessions {
            engine.build_group_tree(netsim::id::GroupId::from(gid), tree.root);
        }

        // Phase-effect elimination with drop-tail gateways: uniform random
        // per-packet processing overhead up to the bottleneck service time
        // (§3.1). RED gateways don't need it.
        if matches!(self.gateway, GatewayKind::DropTail) {
            let service = SimDuration::from_nanos(tx_nanos(
                rla_cfg.packet_size,
                crate::tree::pps_to_bps(self.case.bottleneck_pps()),
            ));
            for &a in tcp_senders.iter().chain(rla_senders.iter()) {
                engine.set_send_overhead(a, service);
            }
        }

        // Host processing jitter at every receiver, both gateway types.
        // Without it the perfectly symmetric tree delivers each multicast
        // packet to all 27 leaves at the same instant; the 27 SACKs then
        // hit the 20-packet reverse buffers as one burst and the engine's
        // deterministic tie-breaking starves the *same* receivers' acks
        // forever — a phase effect no real host exhibits. A couple of
        // milliseconds of uniform jitter (small against the 230 ms RTT)
        // restores the asynchrony real end systems have.
        let ack_jitter = SimDuration::from_millis(2);
        for &a in tcp_receivers.iter() {
            engine.set_send_overhead(a, ack_jitter);
        }
        for rxs in &rla_receivers {
            for &a in rxs {
                engine.set_send_overhead(a, ack_jitter);
            }
        }

        // Staggered deterministic starts to avoid synchronized slow starts.
        let mut t = SimTime::ZERO;
        for &a in tcp_senders.iter().chain(rla_senders.iter()) {
            engine.start_agent_at(a, t);
            t += SimDuration::from_millis(173);
        }

        // Dynamic-scenario machinery, built only when the scenario has
        // scheduled events or background load. A static scenario adds no
        // agents beyond this point and takes none of the executor paths,
        // so its trace digest and registry stay byte-identical to the
        // pre-event-layer code.
        let dynamics = (!self.events.is_empty() || self.bg_load.is_some()).then(|| {
            let mut bg_sinks: Vec<Option<AgentId>> = vec![None; tree.leaves.len()];
            let bg_source = self.bg_load.as_ref().map(|load| {
                let sinks: Vec<AgentId> = (0..tree.leaves.len())
                    .map(|leaf| bg_sink(&mut engine, &tree, &mut bg_sinks, leaf))
                    .collect();
                let src = engine.add_agent(
                    tree.root,
                    Box::new(PoissonFlowSource::new(
                        BackgroundConfig::new(load.flows_per_sec, load.mean_flow_packets),
                        sinks,
                    )),
                );
                engine.start_agent_at(src, SimTime::ZERO);
                src
            });
            // Burst agents for scheduled StartBackgroundFlow commands are
            // created now, in schedule order (deterministic agent ids),
            // and fired by the executor at event time.
            let mut events = self.events.clone();
            events.sort_by_key(|ev| ev.at);
            let pending = events
                .iter()
                .map(|ev| {
                    let burst = match ev.command {
                        EventCommand::StartBackgroundFlow { leaf, packets } => {
                            let sink = bg_sink(&mut engine, &tree, &mut bg_sinks, leaf);
                            Some(engine.add_agent(
                                tree.root,
                                Box::new(BurstSource::new(sink, packets, rla_cfg.packet_size)),
                            ))
                        }
                        _ => None,
                    };
                    PendingEvent {
                        at: SimTime::ZERO + ev.at,
                        command: ev.command.clone(),
                        burst,
                    }
                })
                .collect();
            let active_rx = rla_receivers
                .iter()
                .map(|rxs| {
                    rxs.iter()
                        .take(tree.leaves.len())
                        .map(|&a| Some(a))
                        .collect()
                })
                .collect();
            Dynamics {
                pending,
                ack_size: rla_cfg.ack_size,
                active_rx,
                bg_source,
                counters: ChurnCounters::default(),
                degraded: Vec::new(),
                watch: None,
                reconverge_ms: Vec::new(),
            }
        });

        ScenarioWorld {
            engine,
            tree,
            tcp_senders,
            tcp_receivers,
            rla_senders,
            rla_receivers,
            dynamics,
        }
    }
}

/// Seconds since simulation start, for event-error messages.
fn span_secs(now: SimTime) -> f64 {
    now.saturating_since(SimTime::ZERO).as_secs_f64()
}

/// Get-or-create the background-traffic sink at `leaf`. Sinks are shared
/// between the Poisson aggregate and scheduled bursts, and only exist in
/// dynamic scenarios.
fn bg_sink(
    engine: &mut Engine,
    tree: &TertiaryTree,
    sinks: &mut [Option<AgentId>],
    leaf: usize,
) -> AgentId {
    if let Some(a) = sinks[leaf] {
        return a;
    }
    let a = engine.add_agent(tree.leaves[leaf], Box::new(Sink::default()));
    sinks[leaf] = Some(a);
    a
}

/// What the event executor has done so far (the `net.churn.*` block).
#[derive(Debug, Default)]
struct ChurnCounters {
    joins: u64,
    leaves: u64,
    link_degrades: u64,
    link_restores: u64,
    bg_bursts: u64,
}

/// One scheduled command, resolved to engine terms at build time.
#[derive(Debug)]
struct PendingEvent {
    at: SimTime,
    command: EventCommand,
    /// The pre-created burst agent for `StartBackgroundFlow` commands.
    burst: Option<AgentId>,
}

/// A reconvergence watch: after a churn event, the troubled-receiver
/// count is polled until it returns to its pre-event band.
#[derive(Debug, Clone, Copy)]
struct Watch {
    since: SimTime,
    session: usize,
    baseline: usize,
}

/// Executor state for dynamic scenarios; `None` on static runs.
#[derive(Debug)]
struct Dynamics {
    /// Events not yet applied, in time-then-schedule (FIFO) order.
    pending: VecDeque<PendingEvent>,
    /// Ack size for receivers constructed by `ReceiverJoin`.
    ack_size: u32,
    /// The live receiver at `[session][leaf]`, `None` while departed.
    active_rx: Vec<Vec<Option<AgentId>>>,
    /// The Poisson background aggregate, if configured.
    bg_source: Option<AgentId>,
    counters: ChurnCounters,
    /// Every link ever degraded, with its channel (for `loss_injected`).
    degraded: Vec<(String, ChannelId)>,
    /// The active reconvergence watch, if any.
    watch: Option<Watch>,
    /// Resolved reconvergence times, milliseconds.
    reconverge_ms: Vec<f64>,
}

/// A built scenario: the engine plus the agent handles needed to reset and
/// read statistics.
pub struct ScenarioWorld {
    /// The simulator.
    pub engine: Engine,
    /// The topology handles.
    pub tree: TertiaryTree,
    /// TCP senders at the root, in receiver-node order.
    pub tcp_senders: Vec<AgentId>,
    /// TCP receivers, in receiver-node order.
    pub tcp_receivers: Vec<AgentId>,
    /// RLA sender(s).
    pub rla_senders: Vec<AgentId>,
    /// RLA receivers per session, in receiver-node order.
    pub rla_receivers: Vec<Vec<AgentId>>,
    /// Event-executor state; `None` for static scenarios.
    dynamics: Option<Dynamics>,
}

impl ScenarioWorld {
    /// Run warmup + measurement and collect the rows. Scheduled events
    /// are applied on the way (see [`run_span`](ScenarioWorld::run_span)).
    pub fn run(&mut self, scenario: &TreeScenario) -> ScenarioResult {
        self.run_span(SimTime::ZERO + scenario.warmup);
        self.reset_stats();
        self.run_span(SimTime::ZERO + scenario.duration);
        self.collect(scenario)
    }

    /// Advance the engine to `end`, applying scheduled events on the way.
    ///
    /// The engine is stepped with plain `run_until` calls — to each event
    /// timestamp, and in short increments only while a reconvergence
    /// watch is active — which processes exactly the same packet events
    /// at the same simulated times as one uninterrupted call. A static
    /// scenario (no pending events, no watch) therefore degenerates to a
    /// single `run_until(end)`: trace digests are preserved, and dynamic
    /// runs reproduce bit-identically across repetitions and worker-pool
    /// sizes. Events sharing a timestamp apply in schedule order (FIFO),
    /// mirroring the engine calendar's own tie-break.
    pub fn run_span(&mut self, end: SimTime) {
        let scan = SimDuration::from_millis(250);
        loop {
            let next = self
                .dynamics
                .as_ref()
                .and_then(|d| d.pending.front())
                .map(|p| p.at)
                .filter(|&t| t <= end);
            let target = next.unwrap_or(end);
            while self.engine.now() < target {
                let step = if self.dynamics.as_ref().is_some_and(|d| d.watch.is_some()) {
                    std::cmp::min(self.engine.now() + scan, target)
                } else {
                    target
                };
                self.engine.run_until(step);
                self.check_reconvergence();
            }
            if next.is_none() {
                return;
            }
            loop {
                let due = match self.dynamics.as_mut() {
                    Some(d) if d.pending.front().is_some_and(|p| p.at == target) => {
                        d.pending.pop_front().expect("front checked")
                    }
                    _ => break,
                };
                self.apply_event(due);
            }
        }
    }

    /// Apply one scheduled command at the current simulated time, then
    /// (re)arm the reconvergence watch against the pre-event troubled
    /// count.
    fn apply_event(&mut self, ev: PendingEvent) {
        let now = self.engine.now();
        let session = match &ev.command {
            EventCommand::ReceiverJoin { session, .. }
            | EventCommand::ReceiverLeave { session, .. } => *session,
            _ => 0,
        };
        let baseline = self.troubled_count(session, now);
        match &ev.command {
            EventCommand::ReceiverJoin { session, leaf } => {
                self.apply_join(*session, *leaf, now);
            }
            EventCommand::ReceiverLeave { session, leaf } => {
                self.apply_leave(*session, *leaf, now);
            }
            EventCommand::LinkDegrade {
                link,
                loss,
                bandwidth_pps,
            } => {
                let c = self.channel_for(link, now);
                let bw = bandwidth_pps.map(pps_to_bps);
                self.engine.world_mut().channel_mut(c).degrade(*loss, bw);
                let d = self.dynamics.as_mut().expect("dynamic scenario");
                if !d.degraded.iter().any(|(l, _)| l == link) {
                    d.degraded.push((link.clone(), c));
                }
                d.counters.link_degrades += 1;
            }
            EventCommand::LinkRestore { link } => {
                let c = self.channel_for(link, now);
                assert!(
                    self.engine.world().channel(c).degraded,
                    "LinkRestore at {:.3}s: link {link:?} is not degraded — \
                     schedule a LinkDegrade first",
                    span_secs(now)
                );
                self.engine.world_mut().channel_mut(c).restore();
                let d = self.dynamics.as_mut().expect("dynamic scenario");
                d.counters.link_restores += 1;
            }
            EventCommand::StartBackgroundFlow { .. } => {
                let burst = ev.burst.expect("burst agent pre-created at build");
                self.engine.start_agent_at(burst, now);
                let d = self.dynamics.as_mut().expect("dynamic scenario");
                d.counters.bg_bursts += 1;
                // A burst is cross traffic, not a membership change: it
                // does not arm the reconvergence watch.
                return;
            }
        }
        let d = self.dynamics.as_mut().expect("dynamic scenario");
        d.watch = Some(Watch {
            since: now,
            session,
            baseline,
        });
    }

    /// A joining receiver enters at the sender's *current* sequence: its
    /// cumulative ack starts at `next_seq`, and the sender's fresh
    /// scoreboard for it is pre-advanced to the same point, so in-flight
    /// packets below it (which the joiner may never see) can never open a
    /// hole that would freeze the session's `min_last_ack`.
    fn apply_join(&mut self, session: usize, leaf: usize, now: SimTime) {
        let d = self.dynamics.as_ref().expect("dynamic scenario");
        assert!(
            d.active_rx[session][leaf].is_none(),
            "ReceiverJoin at {:.3}s: session {session} already has a live receiver \
             at leaf {leaf} — schedule a ReceiverLeave first",
            span_secs(now)
        );
        let ack_size = d.ack_size;
        let sender = self.rla_senders[session];
        let started = self
            .engine
            .agent_as::<RlaSender>(sender)
            .expect("rla sender")
            .receiver_count()
            > 0;
        let next_seq = self
            .engine
            .agent_as::<RlaSender>(sender)
            .expect("rla sender")
            .next_seq();
        let rx = self.engine.add_agent(
            self.tree.leaves[leaf],
            Box::new(McastReceiver::joining_at(next_seq, ack_size)),
        );
        self.engine
            .set_send_overhead(rx, SimDuration::from_millis(2));
        self.engine.join_group(GroupId::from(session), rx);
        self.engine
            .build_group_tree(GroupId::from(session), self.tree.root);
        if started {
            self.engine
                .agent_as_mut::<RlaSender>(sender)
                .expect("rla sender")
                .add_receiver(rx, now);
        }
        let d = self.dynamics.as_mut().expect("dynamic scenario");
        d.active_rx[session][leaf] = Some(rx);
        d.counters.joins += 1;
        // Keep the handle so reset_stats touches the joiner too.
        self.rla_receivers[session].push(rx);
    }

    /// The departing receiver is pruned from the distribution tree and
    /// detached from the sender's control loop.
    fn apply_leave(&mut self, session: usize, leaf: usize, now: SimTime) {
        let d = self.dynamics.as_ref().expect("dynamic scenario");
        let rx = d.active_rx[session][leaf].unwrap_or_else(|| {
            panic!(
                "ReceiverLeave at {:.3}s: session {session} has no live receiver \
                 at leaf {leaf}",
                span_secs(now)
            )
        });
        let live = d.active_rx[session].iter().flatten().count();
        assert!(
            live > 1,
            "ReceiverLeave at {:.3}s: leaf {leaf} is session {session}'s last \
             receiver — a session cannot run empty",
            span_secs(now)
        );
        let left = self.engine.leave_group(GroupId::from(session), rx);
        assert!(left, "receiver {rx:?} was not in group {session}");
        self.engine
            .build_group_tree(GroupId::from(session), self.tree.root);
        let sender = self.rla_senders[session];
        let s = self
            .engine
            .agent_as_mut::<RlaSender>(sender)
            .expect("rla sender");
        if s.receiver_count() > 0 {
            s.remove_receiver(rx);
        }
        let d = self.dynamics.as_mut().expect("dynamic scenario");
        d.active_rx[session][leaf] = None;
        d.counters.leaves += 1;
    }

    /// Resolve a paper-style link label (`L1`, `L2.1`, `L4.12`) or panic
    /// with the label and time in the message.
    fn channel_for(&self, link: &str, now: SimTime) -> ChannelId {
        self.tree.channel_by_label(link).unwrap_or_else(|| {
            panic!(
                "link event at {:.3}s names unknown link {link:?} \
                 (expected a label like \"L1\", \"L2.1\" or \"L4.12\")",
                span_secs(now)
            )
        })
    }

    /// Troubled-receiver count of `session` right now (0 before start).
    fn troubled_count(&self, session: usize, now: SimTime) -> usize {
        let s: &RlaSender = self
            .engine
            .agent_as(self.rla_senders[session])
            .expect("rla sender");
        s.num_trouble_rcvr(now)
    }

    /// Resolve the active reconvergence watch if the troubled count has
    /// returned to (or below) its pre-event baseline.
    fn check_reconvergence(&mut self) {
        let Some(d) = self.dynamics.as_ref() else {
            return;
        };
        let Some(w) = d.watch else {
            return;
        };
        let now = self.engine.now();
        if self.troubled_count(w.session, now) <= w.baseline {
            let ms = now.saturating_since(w.since).as_secs_f64() * 1e3;
            let d = self.dynamics.as_mut().expect("dynamic scenario");
            d.reconverge_ms.push(ms);
            d.watch = None;
        }
    }

    /// Install a pcap export tracer: every `TxStart` event becomes one
    /// capture record in `<dir>/<stem>.pcap`. The returned handle is also
    /// held by the engine; borrow it after the run to [`finish`] and read
    /// the record count. Panics with the knob named if the capture file
    /// cannot be created — an export silently going missing would defeat
    /// the point of asking for one.
    ///
    /// [`finish`]: PcapTracer::finish
    pub fn install_pcap(&mut self, opts: &PcapOptions, stem: &str) -> Rc<RefCell<PcapTracer>> {
        let path = opts.dir.join(format!("{stem}.pcap"));
        let tracer = match opts.spool_records {
            Some(chunk) => PcapTracer::create_spooled(&path, opts.snaplen, chunk),
            None => PcapTracer::create(&path, opts.snaplen),
        }
        .unwrap_or_else(|e| panic!("RLA_PCAP: cannot create {}: {e}", path.display()));
        let tracer = Rc::new(RefCell::new(tracer));
        self.engine.set_tracer(tracer.clone());
        tracer
    }

    /// Run warmup + measurement while sampling a per-flow timeline every
    /// `opts.sample_period`. Stepping `run_until` in period-sized
    /// increments processes exactly the same events at the same simulated
    /// times as one uninterrupted call, so the trace digest of a sampled
    /// run is identical to an unsampled one — telemetry observes, never
    /// perturbs.
    pub fn run_with_telemetry(
        &mut self,
        scenario: &TreeScenario,
        opts: &TelemetryOptions,
    ) -> (ScenarioResult, TimelineRecorder) {
        let rec = TimelineRecorder::new(opts.sample_period);
        self.run_with_recorder(scenario, rec)
    }

    /// [`run_with_telemetry`] that additionally streams every sample to
    /// `<dir>/<stem>.timeline.<ext>` as it is recorded (flushed per
    /// line), so `tail -f` and `rla_top` follow the run live instead of
    /// waiting for the end-of-run file write. The streamed file is
    /// byte-identical to what [`TimelineRecorder::write_file`] would
    /// produce afterwards — samples are recorded in render order.
    ///
    /// [`run_with_telemetry`]: Self::run_with_telemetry
    pub fn run_with_telemetry_streamed(
        &mut self,
        scenario: &TreeScenario,
        opts: &TelemetryOptions,
        stem: &str,
    ) -> (ScenarioResult, TimelineRecorder) {
        let mut rec = TimelineRecorder::new(opts.sample_period);
        rec.stream_to(&opts.dir, stem, opts.format)
            .unwrap_or_else(|e| {
                panic!(
                    "RLA_TELEMETRY_DIR: cannot stream the timeline into {}: {e}",
                    opts.dir.display()
                )
            });
        let (result, mut rec) = self.run_with_recorder(scenario, rec);
        rec.finish_stream()
            .unwrap_or_else(|e| panic!("RLA_TELEMETRY_DIR: timeline stream failed: {e}"));
        (result, rec)
    }

    /// Shared body of the telemetry runs: warmup, then sample + step.
    fn run_with_recorder(
        &mut self,
        scenario: &TreeScenario,
        mut rec: TimelineRecorder,
    ) -> (ScenarioResult, TimelineRecorder) {
        let rla_series: Vec<SeriesId> = (0..self.rla_senders.len())
            .map(|i| rec.add_flow(format!("rla.{i}"), "rla"))
            .collect();
        let tcp_series: Vec<SeriesId> = self
            .tcp_senders
            .iter()
            .enumerate()
            .map(|(i, &a)| rec.add_flow(format!("tcp.{i}"), self.tcp_probe(a).0))
            .collect();
        let chan_series: Vec<(SeriesId, ChannelId)> = self
            .tree
            .congested_channels()
            .into_iter()
            .map(|(label, c)| (rec.add_channel(format!("chan.{label}")), c))
            .collect();

        self.run_span(SimTime::ZERO + scenario.warmup);
        self.reset_stats();
        let end = SimTime::ZERO + scenario.duration;
        loop {
            self.sample_into(&mut rec, &rla_series, &tcp_series, &chan_series);
            let now = self.engine.now();
            if now >= end {
                break;
            }
            self.run_span(std::cmp::min(now + rec.period, end));
        }
        (self.collect(scenario), rec)
    }

    /// Push one sample per registered series at the current time.
    fn sample_into(
        &self,
        rec: &mut TimelineRecorder,
        rla_series: &[SeriesId],
        tcp_series: &[SeriesId],
        chan_series: &[(SeriesId, ChannelId)],
    ) {
        let now = self.engine.now();
        for (&sid, &a) in rla_series.iter().zip(&self.rla_senders) {
            let s: &RlaSender = self.engine.agent_as(a).expect("rla sender");
            rec.record_flow(sid, now, s.flow_sample());
        }
        for (&sid, &a) in tcp_series.iter().zip(&self.tcp_senders) {
            rec.record_flow(sid, now, self.tcp_probe(a).1);
        }
        for &(sid, c) in chan_series {
            let ch = self.engine.world().channel(c);
            rec.record_channel(
                sid,
                now,
                ChannelSample {
                    qlen: ch.queue.len(),
                    red_avg: ch.queue.red_avg(),
                },
            );
        }
    }

    /// The statistics block of a TCP sender of either variant.
    fn tcp_sender_stats(&self, a: AgentId) -> &SenderStats {
        if let Some(s) = self.engine.agent_as::<TcpSender>(a) {
            &s.stats
        } else {
            let s: &RenoSender = self.engine.agent_as(a).expect("tcp sender");
            &s.stats
        }
    }

    /// The telemetry probe view of a TCP sender of either variant.
    fn tcp_probe(&self, a: AgentId) -> (&'static str, FlowSample) {
        if let Some(s) = self.engine.agent_as::<TcpSender>(a) {
            (s.probe_kind(), s.flow_sample())
        } else {
            let s: &RenoSender = self.engine.agent_as(a).expect("tcp sender");
            (s.probe_kind(), s.flow_sample())
        }
    }

    /// Reset every agent's statistics window (end of warmup).
    pub fn reset_stats(&mut self) {
        let now = self.engine.now();
        for &a in &self.tcp_senders.clone() {
            if let Some(s) = self.engine.agent_as_mut::<TcpSender>(a) {
                s.reset_stats(now);
            } else {
                self.engine
                    .agent_as_mut::<RenoSender>(a)
                    .expect("tcp sender")
                    .reset_stats(now);
            }
        }
        for &a in &self.tcp_receivers.clone() {
            self.engine
                .agent_as_mut::<TcpReceiver>(a)
                .expect("tcp receiver")
                .reset_stats();
        }
        for &a in &self.rla_senders.clone() {
            self.engine
                .agent_as_mut::<RlaSender>(a)
                .expect("rla sender")
                .reset_stats(now);
        }
        for rxs in self.rla_receivers.clone() {
            for a in rxs {
                self.engine
                    .agent_as_mut::<McastReceiver>(a)
                    .expect("rla receiver")
                    .reset_stats();
            }
        }
    }

    /// Extract the per-flow rows at the current time.
    pub fn collect(&self, scenario: &TreeScenario) -> ScenarioResult {
        let now = self.engine.now();
        let rla = self
            .rla_senders
            .iter()
            .map(|&a| {
                let s: &RlaSender = self.engine.agent_as(a).expect("rla sender");
                RlaRow {
                    throughput_pps: s.stats.throughput_pps(now),
                    cwnd_avg: s.stats.cwnd_avg.average(now),
                    rtt_avg: s.stats.rtt.mean(),
                    cong_signals: s.stats.cong_signals,
                    cong_signals_per_receiver: s.stats.cong_signals_per_receiver.clone(),
                    window_cuts: s.stats.window_cuts(),
                    forced_cuts: s.stats.forced_cuts,
                    timeouts: s.stats.timeouts,
                    retransmits: s.stats.retransmits_multicast + s.stats.retransmits_unicast,
                }
            })
            .collect();
        let tcp = self
            .tcp_senders
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                let stats = self.tcp_sender_stats(a);
                TcpRow {
                    receiver_index: i,
                    throughput_pps: stats.throughput_pps(now),
                    cwnd_avg: stats.cwnd_avg.average(now),
                    rtt_avg: stats.rtt.mean(),
                    window_cuts: stats.total_cuts(),
                    timeouts: stats.timeouts,
                }
            })
            .collect();
        ScenarioResult {
            case_label: scenario.case.label().to_string(),
            gateway: scenario.gateway,
            congested_leaves: self.tree.congested_leaves(),
            measured_secs: now
                .saturating_since(SimTime::ZERO + scenario.warmup)
                .as_secs_f64(),
            seed: scenario.seed,
            trace_digest: self.engine.trace_digest().value(),
            trace_events: self.engine.trace_digest().events(),
            registry: self.registry_snapshot(),
            events: scenario.events.clone(),
            rla,
            tcp,
        }
    }

    /// Every metric block of the run, exported through the one uniform
    /// path (`telemetry::RegistryExport`) and snapshotted: per-flow
    /// sender statistics, the congested channels' buffer statistics,
    /// network-wide channel totals, and the engine's event counters.
    pub fn registry_snapshot(&self) -> telemetry::Snapshot {
        let now = self.engine.now();
        let mut reg = telemetry::Registry::new();
        for (i, &a) in self.rla_senders.iter().enumerate() {
            let s: &RlaSender = self.engine.agent_as(a).expect("rla sender");
            s.stats.export(&mut reg, &format!("rla.{i}"), now);
        }
        for (i, &a) in self.tcp_senders.iter().enumerate() {
            self.tcp_sender_stats(a)
                .export(&mut reg, &format!("tcp.{i}"), now);
        }
        for (label, c) in self.tree.congested_channels() {
            telemetry::registry::export_channel_stats(
                &mut reg,
                &format!("chan.{label}"),
                &self.engine.world().channel(c).stats,
                now,
            );
        }

        // Network-wide totals over every channel, assembled the way the
        // partitioned engine produces them: one partial snapshot per
        // domain (covering the channels that domain owns), folded with
        // `Snapshot::merge` under the byte-lexicographic contract.
        // Counter addition is associative, so the merged block is
        // byte-identical to a single flat pass at every shard count.
        let world = self.engine.world();
        let dmap = world.domain_map();
        let mut per_domain = vec![[0u64; 5]; world.domain_count()];
        for i in 0..world.channel_count() {
            let ch = world.channel(ChannelId(i as u32));
            let t = &mut per_domain[dmap.domain_of(ch.from) as usize];
            t[0] += ch.stats.offered;
            t[1] += ch.stats.accepted;
            t[2] += ch.stats.transmitted;
            t[3] += ch.stats.queue_drops();
            t[4] += ch.stats.fault_drops;
        }
        let mut net = telemetry::Snapshot::default();
        for totals in &per_domain {
            let mut partial = telemetry::Registry::new();
            partial.record_count("net.offered", totals[0]);
            partial.record_count("net.accepted", totals[1]);
            partial.record_count("net.transmitted", totals[2]);
            partial.record_count("net.queue_drops", totals[3]);
            partial.record_count("net.fault_drops", totals[4]);
            net.merge(&partial.snapshot());
        }
        for entry in &net.entries {
            match entry.value {
                telemetry::registry::MetricValue::Counter(v) => {
                    reg.record_count(entry.name.clone(), v)
                }
                telemetry::registry::MetricValue::Gauge(v) => {
                    reg.record_gauge(entry.name.clone(), v)
                }
            }
        }

        let d = self.engine.trace_digest();
        reg.record_count("engine.enqueues", d.enqueues);
        reg.record_count("engine.drops", d.drops);
        reg.record_count("engine.tx_starts", d.tx_starts);
        reg.record_count("engine.arrivals", d.arrivals);
        reg.record_count("engine.deliveries", d.deliveries);

        // The churn/background block exists only on dynamic runs, so a
        // static run's registry (and manifest) stays byte-identical, and
        // `rla_diff` flags static-vs-dynamic as added-key drift.
        if let Some(dy) = &self.dynamics {
            reg.record_count("net.churn.joins", dy.counters.joins);
            reg.record_count("net.churn.leaves", dy.counters.leaves);
            reg.record_count("net.churn.link_degrades", dy.counters.link_degrades);
            reg.record_count("net.churn.link_restores", dy.counters.link_restores);
            reg.record_count("net.churn.bg_bursts", dy.counters.bg_bursts);
            let (flows, packets) = dy
                .bg_source
                .map(|a| {
                    let s: &PoissonFlowSource = self.engine.agent_as(a).expect("bg source");
                    (s.stats.flows, s.stats.packets)
                })
                .unwrap_or((0, 0));
            reg.record_count("net.churn.bg_flows", flows);
            reg.record_count("net.churn.bg_packets", packets);
            // Mean time for the troubled-receiver count to return to its
            // pre-event band, over the resolved watches.
            let mean_ms = if dy.reconverge_ms.is_empty() {
                0.0
            } else {
                dy.reconverge_ms.iter().sum::<f64>() / dy.reconverge_ms.len() as f64
            };
            reg.record_gauge("net.churn.reconverge_ms", mean_ms);
            for (label, c) in &dy.degraded {
                reg.record_count(
                    format!("chan.{label}.loss_injected"),
                    self.engine.world().channel(*c).stats.fault_drops,
                );
            }
        }
        reg.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn quick(case: CongestionCase, gateway: GatewayKind) -> ScenarioResult {
        TreeScenario::paper(case, gateway)
            .with_duration(SimDuration::from_secs(120))
            .run()
    }

    #[test]
    fn short_durations_keep_warmup_inside_the_run() {
        // Regression: durations ≤ 20 s used to clamp warmup to 20 s and
        // trip build()'s `warmup < duration` assertion.
        for secs in [5u64, 10, 20, 21, 60, 120, 3000] {
            let s = TreeScenario::paper(CongestionCase::Case1RootLink, GatewayKind::DropTail)
                .with_duration(SimDuration::from_secs(secs));
            assert!(
                s.warmup < s.duration,
                "duration {secs}s got warmup {:?}",
                s.warmup
            );
        }
        // The longstanding values are unchanged (golden digests depend on
        // the 60 s case).
        let s = TreeScenario::paper(CongestionCase::Case1RootLink, GatewayKind::DropTail)
            .with_duration(SimDuration::from_secs(60));
        assert_eq!(s.warmup, SimDuration::from_secs(20));
        let s = s.with_duration(SimDuration::from_secs(3000));
        assert_eq!(s.warmup, SimDuration::from_secs(100));
        // And a short run actually builds and starts.
        let _ = TreeScenario::paper(CongestionCase::Case1RootLink, GatewayKind::DropTail)
            .with_duration(SimDuration::from_secs(15))
            .build();
    }

    #[test]
    fn case3_droptail_is_essentially_fair() {
        let r = quick(CongestionCase::Case3AllLeaves, GatewayKind::DropTail);
        let rla = &r.rla[0];
        let wtcp = r.worst_tcp().expect("tcp rows");
        // Even in a short run the RLA must sit within the Theorem II
        // bounds against the worst TCP.
        let bounds = analysis::FairnessBounds::theorem2_droptail(27);
        assert!(
            bounds.contains(rla.throughput_pps, wtcp.throughput_pps),
            "rla {} vs wtcp {}",
            rla.throughput_pps,
            wtcp.throughput_pps
        );
        // Soft bottleneck share is 100 pkt/s; nothing should exceed the
        // 200 pkt/s leaf links.
        assert!(rla.throughput_pps < 205.0);
        assert!(wtcp.throughput_pps > 20.0, "TCP must not be shut out");
    }

    #[test]
    fn case1_red_is_close_to_absolute() {
        let r = quick(CongestionCase::Case1RootLink, GatewayKind::Red);
        let rla = &r.rla[0];
        let avg_tcp = r.avg_tcp_throughput();
        let ratio = rla.throughput_pps / avg_tcp;
        // The paper reports ~118 vs ~85-90 (ratio 1.3-1.4) for case 1 RED;
        // accept a generous band for a short run.
        assert!(
            (0.5..4.0).contains(&ratio),
            "ratio {ratio} (rla {}, tcp {avg_tcp})",
            rla.throughput_pps
        );
    }

    #[test]
    fn rtt_matches_topology() {
        let r = quick(CongestionCase::Case3AllLeaves, GatewayKind::DropTail);
        // Base leaf RTT is 230 ms; with queueing it sits somewhat above.
        let rtt = r.rla[0].rtt_avg;
        assert!(
            (0.20..0.5).contains(&rtt),
            "RLA rtt {rtt} should be a bit above 230 ms"
        );
        let tcp_rtt = r.tcp[0].rtt_avg;
        assert!((0.20..0.5).contains(&tcp_rtt), "TCP rtt {tcp_rtt}");
    }

    #[test]
    fn telemetry_emits_a_final_sample_at_the_end_of_partial_periods() {
        // duration = 2.5 × sampling period: the `run_until(min(now +
        // period, end))` stepping loop must emit one last sample at `end`
        // even though `end` is not on a period boundary — a truncated
        // timeline would silently hide everything after the last full
        // tick.
        let scenario = TreeScenario::paper(CongestionCase::Case1RootLink, GatewayKind::DropTail)
            .with_duration(SimDuration::from_secs(150));
        let opts = TelemetryOptions {
            timeline: true,
            sample_period: SimDuration::from_secs(60),
            ..TelemetryOptions::default()
        };
        let mut world = scenario.build();
        let (_, rec) = world.run_with_telemetry(&scenario, &opts);
        assert!(!rec.series().is_empty());
        for s in rec.series() {
            let times: Vec<f64> = s.samples.iter().map(|(t, _)| t.as_secs_f64()).collect();
            // Warmup ends at 20 s; full ticks at 80 s and 140 s; the
            // final partial tick lands exactly on end-of-run.
            assert_eq!(times, vec![20.0, 80.0, 140.0, 150.0], "series {}", s.name);
        }
    }

    #[test]
    fn canonical_churn_scenario_executes_its_schedule() {
        use telemetry::MetricValue;
        let r = crate::events::canonical_churn_spec().run();
        let count = |key: &str| match r.registry.get(key) {
            Some(MetricValue::Counter(v)) => v,
            other => panic!("{key} missing or wrong kind: {other:?}"),
        };
        assert_eq!(count("net.churn.joins"), 1);
        assert_eq!(count("net.churn.leaves"), 1);
        assert_eq!(count("net.churn.link_degrades"), 1);
        assert_eq!(count("net.churn.link_restores"), 1);
        assert_eq!(count("net.churn.bg_bursts"), 0);
        // The degraded congested link carried traffic while lossy.
        assert!(count("chan.L2.1.loss_injected") > 0, "injected loss");
        match r.registry.get("net.churn.reconverge_ms") {
            Some(MetricValue::Gauge(v)) => assert!(v >= 0.0, "reconverge {v}"),
            other => panic!("reconverge_ms missing: {other:?}"),
        }
        // The manifest entry records the schedule.
        assert_eq!(r.events.len(), 4);
        let entry = crate::manifest::scenario_entry(&r).pretty();
        assert!(entry.contains(r#""events""#), "{entry}");
        assert!(entry.contains(r#""command": "link_degrade""#), "{entry}");
    }

    #[test]
    fn canonical_bgload_scenario_injects_cross_traffic() {
        use telemetry::MetricValue;
        let r = crate::events::canonical_bgload_spec().run();
        let count = |key: &str| match r.registry.get(key) {
            Some(MetricValue::Counter(v)) => v,
            other => panic!("{key} missing or wrong kind: {other:?}"),
        };
        assert_eq!(count("net.churn.bg_bursts"), 1);
        assert!(count("net.churn.bg_flows") > 0, "Poisson flows arrived");
        assert!(
            count("net.churn.bg_packets") >= count("net.churn.bg_flows"),
            "every flow is at least one packet"
        );
        // Static registry keys are still there alongside the churn block.
        assert!(r.registry.get("net.offered").is_some());
    }

    #[test]
    fn membership_event_on_a_sample_boundary_yields_exactly_one_sample() {
        // Extends the final-sample pin above: a leave scheduled exactly on
        // the 80 s telemetry boundary must neither drop that sample nor
        // double it — the event applies when the engine reaches 80 s, then
        // the loop takes its one sample.
        let scenario = {
            let mut s = TreeScenario::paper(CongestionCase::Case1RootLink, GatewayKind::DropTail)
                .with_duration(SimDuration::from_secs(150));
            s.events = vec![ScenarioEvent::leave(80.0, 0, 0)];
            s
        };
        let opts = TelemetryOptions {
            timeline: true,
            sample_period: SimDuration::from_secs(60),
            ..TelemetryOptions::default()
        };
        let mut world = scenario.build();
        let (r, rec) = world.run_with_telemetry(&scenario, &opts);
        for s in rec.series() {
            let times: Vec<f64> = s.samples.iter().map(|(t, _)| t.as_secs_f64()).collect();
            assert_eq!(times, vec![20.0, 80.0, 140.0, 150.0], "series {}", s.name);
        }
        use telemetry::MetricValue;
        assert_eq!(
            r.registry.get("net.churn.leaves"),
            Some(MetricValue::Counter(1))
        );
    }

    #[test]
    fn full_loss_degrade_blacks_out_a_link_until_restore() {
        use telemetry::MetricValue;
        let r = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(60))
            .with_event(ScenarioEvent::degrade(25.0, "L4.1", 1.0, None))
            .with_event(ScenarioEvent::restore(30.0, "L4.1"))
            .run();
        match r.registry.get("chan.L4.1.loss_injected") {
            Some(MetricValue::Counter(v)) => {
                assert!(v > 0, "a 100% lossy leaf link must drop traffic")
            }
            other => panic!("loss_injected missing: {other:?}"),
        }
        // The session survives the 5 s blackout of one leaf.
        assert!(r.rla[0].throughput_pps > 0.0);
    }

    #[test]
    #[should_panic(expected = "is not degraded")]
    fn restore_without_degrade_is_rejected_with_the_link_named() {
        let _ = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(60))
            .with_event(ScenarioEvent::restore(25.0, "L2.1"))
            .run();
    }

    #[test]
    #[should_panic(expected = "unknown link")]
    fn unknown_link_label_is_rejected_at_event_time() {
        let _ = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(60))
            .with_event(ScenarioEvent::degrade(25.0, "L9.9", 0.1, None))
            .run();
    }

    #[test]
    #[should_panic(expected = "no live receiver")]
    fn leaving_twice_from_the_same_leaf_is_rejected() {
        let _ = ScenarioSpec::paper(CongestionCase::Case5OneLevel2)
            .with_duration(SimDuration::from_secs(60))
            .with_event(ScenarioEvent::leave(25.0, 0, 3))
            .with_event(ScenarioEvent::leave(26.0, 0, 3))
            .run();
    }

    #[test]
    fn two_sessions_split_evenly() {
        let mut s = TreeScenario::paper(CongestionCase::Case3AllLeaves, GatewayKind::DropTail)
            .with_duration(SimDuration::from_secs(150));
        s.rla_sessions = 2;
        let r = s.run();
        assert_eq!(r.rla.len(), 2);
        let (a, b) = (r.rla[0].throughput_pps, r.rla[1].throughput_pps);
        let ratio = a.max(b) / a.min(b).max(1e-9);
        assert!(ratio < 2.0, "sessions {a} vs {b}");
    }
}
