//! The Markov "particle" model of two competing RLA sessions (§4.4,
//! figures 3–5).
//!
//! Two multicast sessions share the same topology; the point
//! `(cwnd₁, cwnd₂)` is a particle moving on the plane. With the time unit
//! `Δt = 2·RTT` and all `n` troubled links at pipe size `pipe`:
//!
//! * no congestion (`W₁+W₂ < pipe`): both windows grow by 2;
//! * congestion: each sender independently keeps growing with probability
//!   `p₀ = (1 − 1/n)ⁿ`, or is cut `i` times with probability
//!   `C(n,i) (1 − 1/n)^(n−i) (1/n)^i`.
//!
//! The drift field (figure 4) points toward the fair operating point, and
//! the stationary density (figure 5) concentrates around it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Binomial coefficient as f64 (exact for the small n used here).
fn binom(n: usize, k: usize) -> f64 {
    let mut c = 1.0;
    for j in 0..k {
        c = c * (n - j) as f64 / (j + 1) as f64;
    }
    c
}

/// The cut-count distribution upon congestion: `P(i cuts)` for
/// `i = 0..=n` when `n` congestion signals each get an independent `1/n`
/// coin.
pub fn cut_distribution(n: usize) -> Vec<f64> {
    assert!(n >= 1, "need at least one congested link");
    let nf = n as f64;
    (0..=n)
        .map(|i| binom(n, i) * (1.0 - 1.0 / nf).powi((n - i) as i32) * (1.0 / nf).powi(i as i32))
        .collect()
}

/// The average drift of one session's window at `(w1, w2)` — the
/// x-component of figure 4's vector field (the y-component is symmetric).
pub fn drift_x(w1: f64, w2: f64, n: usize, pipe: f64) -> f64 {
    if w1 + w2 < pipe {
        return 2.0;
    }
    let p = cut_distribution(n);
    // Growth by 2 with p0; a cut to w1/2^i loses w1 (1 - 2^-i).
    let mut d = 2.0 * p[0];
    for (i, &pi) in p.iter().enumerate().skip(1) {
        d -= w1 * (1.0 - 0.5f64.powi(i as i32)) * pi;
    }
    d
}

/// One grid point of the drift diagram.
#[derive(Debug, Clone, Copy)]
pub struct DriftVector {
    /// Session 1 window.
    pub w1: f64,
    /// Session 2 window.
    pub w2: f64,
    /// Average drift of `w1` per `Δt`.
    pub dx: f64,
    /// Average drift of `w2` per `Δt`.
    pub dy: f64,
}

/// The full drift field over `[1, w_max]²` with the given grid step
/// (figure 4 uses `n = 3`, `pipe = 10`).
pub fn drift_field(n: usize, pipe: f64, w_max: f64, step: f64) -> Vec<DriftVector> {
    assert!(step > 0.0 && w_max >= step, "bad grid");
    let mut field = Vec::new();
    let mut w1 = step;
    while w1 <= w_max + 1e-9 {
        let mut w2 = step;
        while w2 <= w_max + 1e-9 {
            field.push(DriftVector {
                w1,
                w2,
                dx: drift_x(w1, w2, n, pipe),
                dy: drift_x(w2, w1, n, pipe),
            });
            w2 += step;
        }
        w1 += step;
    }
    field
}

/// Result of simulating the particle model.
#[derive(Debug, Clone)]
pub struct ParticleStats {
    /// Mean of `W₁` over the run.
    pub mean_w1: f64,
    /// Mean of `W₂` over the run.
    pub mean_w2: f64,
    /// 2-D histogram of `(W₁, W₂)` occurrences: `histogram[x][y]` counts
    /// steps with `floor(W₁) = x`, `floor(W₂) = y` (clamped to the grid).
    pub histogram: Vec<Vec<u64>>,
    /// Steps simulated.
    pub steps: u64,
}

impl ParticleStats {
    /// The grid cell with the highest occupancy.
    pub fn mode(&self) -> (usize, usize) {
        let mut best = (0, 0);
        let mut best_count = 0;
        for (x, row) in self.histogram.iter().enumerate() {
            for (y, &c) in row.iter().enumerate() {
                if c > best_count {
                    best_count = c;
                    best = (x, y);
                }
            }
        }
        best
    }

    /// Fraction of time spent within `radius` (Chebyshev) of `(cx, cy)`.
    pub fn mass_near(&self, cx: f64, cy: f64, radius: f64) -> f64 {
        let mut near = 0u64;
        for (x, row) in self.histogram.iter().enumerate() {
            for (y, &c) in row.iter().enumerate() {
                let dx = (x as f64 - cx).abs();
                let dy = (y as f64 - cy).abs();
                if dx.max(dy) <= radius {
                    near += c;
                }
            }
        }
        near as f64 / self.steps.max(1) as f64
    }
}

/// Simulate the two-session particle (figure 5's setup: both sessions see
/// the same `n` congestion signals; each reacts independently).
pub fn simulate_particle(
    n: usize,
    pipe: f64,
    steps: u64,
    seed: u64,
    grid_max: usize,
) -> ParticleStats {
    assert!(n >= 1 && pipe > 2.0, "degenerate model");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = [2.0f64, 2.0f64];
    let mut sum = [0.0f64; 2];
    let mut histogram = vec![vec![0u64; grid_max + 1]; grid_max + 1];
    for _ in 0..steps {
        if w[0] + w[1] < pipe {
            w[0] += 2.0;
            w[1] += 2.0;
        } else {
            for wk in w.iter_mut() {
                let mut cuts = 0u32;
                for _ in 0..n {
                    if rng.gen::<f64>() < 1.0 / n as f64 {
                        cuts += 1;
                    }
                }
                if cuts == 0 {
                    *wk += 2.0;
                } else {
                    *wk = (*wk / 2.0f64.powi(cuts as i32)).max(1.0);
                }
            }
        }
        sum[0] += w[0];
        sum[1] += w[1];
        let x = (w[0].floor() as usize).min(grid_max);
        let y = (w[1].floor() as usize).min(grid_max);
        histogram[x][y] += 1;
    }
    ParticleStats {
        mean_w1: sum[0] / steps as f64,
        mean_w2: sum[1] / steps as f64,
        histogram,
        steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cut_distribution_sums_to_one() {
        for n in [1, 2, 3, 9, 27] {
            let p = cut_distribution(n);
            let sum: f64 = p.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "n={n}: sum {sum}");
            // p0 -> 1/e as n grows.
            if n >= 9 {
                assert!((p[0] - (-1.0f64).exp()).abs() < 0.03);
            }
        }
    }

    #[test]
    fn drift_positive_below_pipe_negative_far_above() {
        let n = 3;
        let pipe = 10.0;
        assert_eq!(drift_x(3.0, 3.0, n, pipe), 2.0);
        // Far above the pipe with a big window, drift must be negative.
        assert!(drift_x(20.0, 20.0, n, pipe) < 0.0);
    }

    #[test]
    fn drift_field_is_symmetric() {
        let field = drift_field(3, 10.0, 20.0, 2.0);
        for v in &field {
            let mirror = field
                .iter()
                .find(|m| (m.w1 - v.w2).abs() < 1e-9 && (m.w2 - v.w1).abs() < 1e-9)
                .expect("mirror point must exist");
            assert!((v.dx - mirror.dy).abs() < 1e-12);
        }
    }

    #[test]
    fn sessions_get_equal_average_windows() {
        let s = simulate_particle(3, 40.0, 400_000, 9, 80);
        let rel = (s.mean_w1 - s.mean_w2).abs() / s.mean_w1;
        assert!(rel < 0.02, "means {} vs {}", s.mean_w1, s.mean_w2);
    }

    #[test]
    fn mass_concentrates_near_fair_point() {
        // pipe = 40 shared by two sessions: fair point (20, 20).
        let s = simulate_particle(3, 40.0, 400_000, 11, 80);
        let near = s.mass_near(20.0, 20.0, 10.0);
        assert!(near > 0.5, "only {near} of the mass near the fair point");
        // The distribution is centred there, not at the extremes.
        let corner = s.mass_near(60.0, 60.0, 10.0);
        assert!(corner < 0.05);
    }

    #[test]
    fn fair_point_is_recurrent() {
        // The chain keeps returning near the fair point: count visits in
        // disjoint windows of the run.
        let s = simulate_particle(2, 20.0, 200_000, 13, 40);
        assert!(s.mass_near(10.0, 10.0, 5.0) > 0.4);
    }
}
