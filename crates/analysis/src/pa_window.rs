//! The proportional-average (PA) window size — equation (1) of the paper.
//!
//! For ideal TCP congestion avoidance with congestion probability `p`
//! (window cuts per packet sent), the drift of the window process
//! `W_{t+1} = W_t + 1/W_t` w.p. `1-p`, `W_t/2` w.p. `p` vanishes at
//!
//! ```text
//! W* = sqrt(2 (1-p)) / sqrt(p)            (eq. 1)
//! ```
//!
//! which approximates (and is proportional to) the time-average window,
//! following Ott, Kemperman & Mathis. This module provides the closed form
//! and a Monte-Carlo simulation of the same process so experiment E8 can
//! verify the approximation holds in this codebase.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Equation (1): the PA window size for congestion probability `p`.
pub fn pa_window(p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "congestion probability must be in (0,1)"
    );
    (2.0 * (1.0 - p)).sqrt() / p.sqrt()
}

/// The small-`p` approximation `sqrt(2)/sqrt(p)`.
pub fn pa_window_approx(p: f64) -> f64 {
    assert!(p > 0.0, "congestion probability must be positive");
    (2.0f64).sqrt() / p.sqrt()
}

/// The Mahdavi–Floyd throughput rule the paper compares against:
/// `bandwidth = 1.3 / (RTT * sqrt(p))` packets per second.
pub fn mahdavi_floyd_pps(p: f64, rtt_secs: f64) -> f64 {
    assert!(p > 0.0, "loss probability must be positive");
    assert!(rtt_secs > 0.0, "RTT must be positive");
    1.3 / (rtt_secs * p.sqrt())
}

/// Outcome of a Monte-Carlo run of the ideal window process.
#[derive(Debug, Clone, Copy)]
pub struct WindowProcessStats {
    /// Mean of `W_t` over all steps (after warmup).
    pub mean: f64,
    /// Mean of `1/W_t` (used to convert between per-packet and per-RTT
    /// averages if needed).
    pub mean_inverse: f64,
    /// Number of window cuts taken.
    pub cuts: u64,
    /// Steps simulated (after warmup).
    pub steps: u64,
}

/// Simulate the per-packet window process of §4.1: with probability `p`
/// the window halves, otherwise it grows by `1/W`. The first `warmup`
/// steps are discarded.
pub fn simulate_tcp_window(p: f64, steps: u64, warmup: u64, seed: u64) -> WindowProcessStats {
    assert!(
        p > 0.0 && p < 1.0,
        "congestion probability must be in (0,1)"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w: f64 = 1.0;
    let mut sum = 0.0;
    let mut sum_inv = 0.0;
    let mut cuts = 0;
    let mut counted = 0;
    for t in 0..steps + warmup {
        if rng.gen::<f64>() < p {
            w = (w / 2.0).max(1.0);
            if t >= warmup {
                cuts += 1;
            }
        } else {
            w += 1.0 / w;
        }
        if t >= warmup {
            sum += w;
            sum_inv += 1.0 / w;
            counted += 1;
        }
    }
    WindowProcessStats {
        mean: sum / counted as f64,
        mean_inverse: sum_inv / counted as f64,
        cuts,
        steps: counted,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closed_form_at_known_points() {
        // p = 0.02: W* = sqrt(2*0.98/0.02) = sqrt(98) ~ 9.899.
        assert!((pa_window(0.02) - 98.0f64.sqrt()).abs() < 1e-12);
        // Approximation converges at small p.
        let rel = (pa_window(0.0001) - pa_window_approx(0.0001)).abs() / pa_window(0.0001);
        assert!(rel < 1e-4);
    }

    #[test]
    fn window_shrinks_with_more_congestion() {
        assert!(pa_window(0.01) > pa_window(0.02));
        assert!(pa_window(0.02) > pa_window(0.04));
    }

    #[test]
    fn monte_carlo_matches_closed_form_within_tolerance() {
        // The PA window is "proportional to" the time average; Ott et al.
        // show the ratio is close to 1 for small p. Accept 25%.
        for &p in &[0.005, 0.01, 0.02] {
            let sim = simulate_tcp_window(p, 2_000_000, 100_000, 42);
            let predicted = pa_window(p);
            let ratio = sim.mean / predicted;
            assert!(
                (0.75..1.25).contains(&ratio),
                "p={p}: simulated {}, predicted {predicted}, ratio {ratio}",
                sim.mean
            );
        }
    }

    #[test]
    fn monte_carlo_cut_rate_matches_p() {
        let p = 0.01;
        let sim = simulate_tcp_window(p, 1_000_000, 10_000, 7);
        let rate = sim.cuts as f64 / sim.steps as f64;
        assert!((rate - p).abs() < 0.002, "cut rate {rate}");
    }

    #[test]
    fn mahdavi_floyd_magnitude() {
        // p = 1%, RTT = 100 ms: 1.3 / (0.1 * 0.1) = 130 pkt/s.
        assert!((mahdavi_floyd_pps(0.01, 0.1) - 130.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn zero_p_rejected() {
        pa_window(0.0);
    }
}
