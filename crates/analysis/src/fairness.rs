//! Essential fairness — the paper's §2 definitions and §4 theorem bounds.
//!
//! A multicast session is **essentially fair** to TCP if its long-run
//! throughput `λ_RLA` satisfies `a·λ_TCP < λ_RLA < b·λ_TCP`, where
//! `λ_TCP` is the throughput of the competing TCP connections on the soft
//! bottleneck and `a ≤ b < N` are functions of the receiver count.
//! **Absolute fairness** is the special case `a = b = 1`.

/// A pair of essential-fairness bounds `(a, b)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FairnessBounds {
    /// Lower multiple of the TCP throughput.
    pub a: f64,
    /// Upper multiple of the TCP throughput.
    pub b: f64,
}

impl FairnessBounds {
    /// Theorem I: RED gateways, `n` persistently congested receivers,
    /// worst congestion probability below 5% — `a = 1/3`, `b = √(3n)`.
    pub fn theorem1_red(n: usize) -> Self {
        assert!(n >= 1, "need at least one congested receiver");
        FairnessBounds {
            a: 1.0 / 3.0,
            b: (3.0 * n as f64).sqrt(),
        }
    }

    /// Theorem II: drop-tail gateways with phase effects eliminated —
    /// `a = 1/4`, `b = 2n`.
    pub fn theorem2_droptail(n: usize) -> Self {
        assert!(n >= 1, "need at least one congested receiver");
        FairnessBounds {
            a: 0.25,
            b: 2.0 * n as f64,
        }
    }

    /// Absolute fairness (`a = b = 1`).
    pub fn absolute() -> Self {
        FairnessBounds { a: 1.0, b: 1.0 }
    }

    /// The §4.3 remark: with *equally* congested troubled receivers the
    /// RLA throughput stays within 4× TCP for any `n`.
    pub fn balanced_congestion() -> Self {
        FairnessBounds {
            a: 1.0 / 3.0,
            b: 4.0,
        }
    }

    /// `b / a`, the paper's tightness indicator.
    pub fn tightness(&self) -> f64 {
        self.b / self.a
    }

    /// Does a measured throughput pair satisfy the bounds?
    /// Uses the closed interval (measurement noise should not flip a
    /// boundary case into a failure).
    pub fn contains(&self, lambda_rla: f64, lambda_tcp: f64) -> bool {
        assert!(lambda_tcp > 0.0, "TCP must not be shut out");
        let ratio = lambda_rla / lambda_tcp;
        self.a <= ratio && ratio <= self.b
    }
}

/// A measured fairness outcome for reporting.
#[derive(Debug, Clone)]
pub struct FairnessCheck {
    /// Multicast throughput, pkt/s.
    pub lambda_rla: f64,
    /// Competing TCP throughput on the soft bottleneck, pkt/s.
    pub lambda_tcp: f64,
    /// `λ_RLA / λ_TCP`.
    pub ratio: f64,
    /// The theorem bounds tested.
    pub bounds: FairnessBounds,
    /// Whether the bounds hold.
    pub fair: bool,
}

impl FairnessCheck {
    /// Evaluate a measurement against `bounds`.
    pub fn evaluate(lambda_rla: f64, lambda_tcp: f64, bounds: FairnessBounds) -> Self {
        let ratio = lambda_rla / lambda_tcp;
        FairnessCheck {
            lambda_rla,
            lambda_tcp,
            ratio,
            bounds,
            fair: bounds.contains(lambda_rla, lambda_tcp),
        }
    }
}

/// Jain's fairness index `(Σx)² / (n·Σx²)` over a set of throughputs:
/// 1 when everything is equal, `1/n` when one flow takes all. Zero and
/// negative entries count toward `n` (a starved flow lowers the index);
/// an empty or all-zero set yields 0.
pub fn jain_index(throughputs: &[f64]) -> f64 {
    if throughputs.is_empty() {
        return 0.0;
    }
    let sum: f64 = throughputs.iter().sum();
    let sum_sq: f64 = throughputs.iter().map(|x| x * x).sum();
    if sum_sq == 0.0 {
        return 0.0;
    }
    sum * sum / (throughputs.len() as f64 * sum_sq)
}

/// Worst pairwise throughput ratio `max(x) / min(x)` — the paper's
/// fairness-table shape reduced to one number. 1 means perfectly even;
/// `+∞` when some flow is starved to zero (or negative).
pub fn worst_pair_ratio(throughputs: &[f64]) -> f64 {
    assert!(!throughputs.is_empty(), "need at least one throughput");
    let max = throughputs.iter().cloned().fold(f64::MIN, f64::max);
    let min = throughputs.iter().cloned().fold(f64::MAX, f64::min);
    if min <= 0.0 {
        return f64::INFINITY;
    }
    max / min
}

/// The soft bottleneck of a multicast session (§2.2): the branch with the
/// smallest per-connection share `μ_i / (m_i + 1)`, where `μ_i` is the
/// branch's available bandwidth (pkt/s) and `m_i` its competing TCP count.
/// Returns `(index, share)`.
pub fn soft_bottleneck(branches: &[(f64, usize)]) -> (usize, f64) {
    assert!(!branches.is_empty(), "a session has at least one branch");
    branches
        .iter()
        .enumerate()
        .map(|(i, &(mu, m))| {
            assert!(mu > 0.0, "branch bandwidth must be positive");
            (i, mu / (m + 1) as f64)
        })
        .min_by(|a, b| a.1.partial_cmp(&b.1).expect("share is finite"))
        .expect("nonempty")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem_bounds_shape() {
        let t1 = FairnessBounds::theorem1_red(27);
        assert!((t1.a - 1.0 / 3.0).abs() < 1e-12);
        assert!((t1.b - 81.0f64.sqrt()).abs() < 1e-12);
        let t2 = FairnessBounds::theorem2_droptail(27);
        assert_eq!(t2.a, 0.25);
        assert_eq!(t2.b, 54.0);
        // RED bounds are tighter than drop-tail bounds for every n.
        for n in 1..=50 {
            assert!(
                FairnessBounds::theorem1_red(n).tightness()
                    < FairnessBounds::theorem2_droptail(n).tightness()
            );
        }
    }

    #[test]
    fn bounds_are_below_n() {
        // The definition requires a <= b < N (the receiver count), for the
        // regimes the theorems cover.
        for n in 4..=100 {
            let t1 = FairnessBounds::theorem1_red(n);
            assert!(t1.a <= t1.b && t1.b < n as f64 * 3.0);
        }
    }

    #[test]
    fn containment() {
        let b = FairnessBounds::theorem2_droptail(27);
        assert!(b.contains(144.1, 81.8), "figure 7 case 1 is fair");
        assert!(!b.contains(1.0, 100.0), "starved multicast is unfair");
        assert!(!b.contains(10_000.0, 10.0), "TCP shut out is unfair");
    }

    #[test]
    fn absolute_is_special_case() {
        let b = FairnessBounds::absolute();
        assert!(b.contains(100.0, 100.0));
        assert!(!b.contains(101.0, 100.0));
        assert_eq!(b.tightness(), 1.0);
    }

    #[test]
    fn jain_index_spans_its_range() {
        assert_eq!(jain_index(&[]), 0.0);
        assert_eq!(jain_index(&[0.0, 0.0]), 0.0);
        assert!((jain_index(&[100.0, 100.0, 100.0]) - 1.0).abs() < 1e-12);
        // One flow takes all: index collapses to 1/n.
        let n = 4;
        let mut xs = vec![0.0; n];
        xs[0] = 250.0;
        assert!((jain_index(&xs) - 1.0 / n as f64).abs() < 1e-12);
        // Mild skew lands strictly between.
        let j = jain_index(&[100.0, 80.0, 120.0]);
        assert!(j > 0.9 && j < 1.0, "jain {j}");
    }

    #[test]
    fn worst_pair_ratio_reports_spread() {
        assert_eq!(worst_pair_ratio(&[100.0]), 1.0);
        assert!((worst_pair_ratio(&[50.0, 100.0, 75.0]) - 2.0).abs() < 1e-12);
        assert_eq!(worst_pair_ratio(&[0.0, 100.0]), f64::INFINITY);
    }

    #[test]
    fn soft_bottleneck_minimizes_share() {
        // Branches: (bandwidth pkt/s, competing TCPs).
        let branches = [(1000.0, 1), (300.0, 2), (500.0, 9)];
        let (idx, share) = soft_bottleneck(&branches);
        assert_eq!(idx, 2); // 500/10 = 50 < 300/3 = 100 < 1000/2 = 500
        assert!((share - 50.0).abs() < 1e-12);
    }

    #[test]
    fn measured_check_reports_ratio() {
        let c = FairnessCheck::evaluate(144.1, 81.8, FairnessBounds::theorem2_droptail(27));
        assert!(c.fair);
        assert!((c.ratio - 144.1 / 81.8).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shut out")]
    fn zero_tcp_rejected() {
        FairnessBounds::absolute().contains(1.0, 0.0);
    }
}
