//! The Proposition of §4.2: bounds on the RLA's proportional-average
//! window, and the closed-form fixed points its proof is built from.
//!
//! With `n` troubled receivers whose congestion probabilities are
//! `p_1..p_n`, the sender cuts on each signal independently with
//! probability `1/n`. Per packet sent, receiver `i` contributes a cut
//! indicator `c_i ~ Bernoulli(p_i / n)` (independent-loss case), so with
//! `k = Σ c_i` cuts the window moves `W → W / 2^k` (and `W → W + 1/W`
//! when `k = 0`). The zero-drift point generalizes equation (3):
//!
//! ```text
//! W*² = P(k = 0) / E[1 − 2^(−k)]
//!     = Π(1 − p_i/n) / (1 − Π(1 − p_i/(2n)))       (independent losses)
//! ```
//!
//! For `n = 1` this is exactly equation (1); for `n = 2` it reduces to the
//! paper's equation (3). The common-loss case (figure 2(b)) replaces the
//! independent indicators by one shared loss event.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Equation (3) generalized: the RLA PA window with *independent* loss
/// paths, congestion probabilities `p`, and cut probability `1/n` where
/// `n = p.len()`.
pub fn rla_window_independent(p: &[f64]) -> f64 {
    let n = p.len() as f64;
    assert!(n >= 1.0, "need at least one receiver");
    for &pi in p {
        assert!((0.0..1.0).contains(&pi), "probabilities must be in [0,1)");
    }
    let q0: f64 = p.iter().map(|&pi| 1.0 - pi / n).product();
    let e_half: f64 = p.iter().map(|&pi| 1.0 - pi / (2.0 * n)).product();
    let denom = 1.0 - e_half;
    assert!(denom > 0.0, "at least one receiver must see losses");
    (q0 / denom).sqrt()
}

/// The *common-loss* case (figure 2(b)): all `n` receivers signal together
/// with probability `p`; each signal is listened to independently with
/// probability `1/n`, so `k | signal ~ Binomial(n, 1/n)`.
pub fn rla_window_common(p: f64, n: usize) -> f64 {
    assert!((0.0..1.0).contains(&p), "probability must be in [0,1)");
    assert!(n >= 1, "need at least one receiver");
    assert!(p > 0.0, "some loss is required for a fixed point");
    let nf = n as f64;
    // P(no cut) = (1-p) + p * (1 - 1/n)^n ; E[2^-k | signal] = (1 - 1/(2n))^n.
    let q0 = (1.0 - p) + p * (1.0 - 1.0 / nf).powi(n as i32);
    let e_half_given_signal = (1.0 - 1.0 / (2.0 * nf)).powi(n as i32);
    let denom = p * (1.0 - e_half_given_signal);
    (q0 / denom).sqrt()
}

/// The paper's equation (3) verbatim, for two receivers with independent
/// loss paths:
/// `W̄² = 4·(1 − (p1+p2)/2 + p1·p2/4) / (p1 + p2 − p1·p2/4)`.
pub fn eq3_two_receivers(p1: f64, p2: f64) -> f64 {
    assert!(p1 > 0.0 || p2 > 0.0, "some loss is required");
    let num = 4.0 * (1.0 - 0.5 * (p1 + p2) + 0.25 * p1 * p2);
    let den = p1 + p2 - 0.25 * p1 * p2;
    (num / den).sqrt()
}

/// The Proposition's bounds (equation 2): with `p_max` the largest
/// congestion probability and `n` troubled receivers,
/// `sqrt(2(1-p_max)/p_max) < W̄ < sqrt(n) · sqrt(2(1-p_max)/p_max)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PropositionBounds {
    /// The lower bound (the PA window of a TCP seeing `p_max`).
    pub lower: f64,
    /// The upper bound (`sqrt(n)` times the lower bound).
    pub upper: f64,
}

/// Compute the Proposition's bounds for `n` receivers with worst
/// congestion probability `p_max`.
pub fn proposition_bounds(p_max: f64, n: usize) -> PropositionBounds {
    let base = crate::pa_window::pa_window(p_max);
    PropositionBounds {
        lower: base,
        upper: (n as f64).sqrt() * base,
    }
}

/// Monte-Carlo simulation of the RLA window process for experiment E9:
/// per step, each receiver signals (independently, or all together when
/// `common` is set), each signal is listened to with probability `1/n`,
/// and the window halves once per accepted signal.
pub fn simulate_rla_window(p: &[f64], common: bool, steps: u64, warmup: u64, seed: u64) -> f64 {
    let n = p.len();
    assert!(n >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w: f64 = 1.0;
    let mut sum = 0.0;
    let mut counted = 0u64;
    for t in 0..steps + warmup {
        let mut cuts = 0u32;
        if common {
            // One shared loss event at probability p[0]; n listening coins.
            if rng.gen::<f64>() < p[0] {
                for _ in 0..n {
                    if rng.gen::<f64>() < 1.0 / n as f64 {
                        cuts += 1;
                    }
                }
            }
        } else {
            for &pi in p {
                if rng.gen::<f64>() < pi && rng.gen::<f64>() < 1.0 / n as f64 {
                    cuts += 1;
                }
            }
        }
        if cuts == 0 {
            w += 1.0 / w;
        } else {
            w = (w / 2.0f64.powi(cuts as i32)).max(1.0);
        }
        if t >= warmup {
            sum += w;
            counted += 1;
        }
    }
    sum / counted as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pa_window::pa_window;

    #[test]
    fn single_receiver_reduces_to_eq1() {
        for &p in &[0.001, 0.01, 0.04] {
            let rla = rla_window_independent(&[p]);
            let tcp = pa_window(p);
            assert!(
                (rla - tcp).abs() / tcp < 1e-12,
                "n=1 must equal eq. (1): {rla} vs {tcp}"
            );
        }
    }

    #[test]
    fn two_receivers_match_paper_eq3() {
        for &(p1, p2) in &[(0.01, 0.01), (0.02, 0.005), (0.04, 0.001)] {
            let ours = rla_window_independent(&[p1, p2]);
            let paper = eq3_two_receivers(p1, p2);
            assert!(
                (ours - paper).abs() / paper < 1e-9,
                "({p1},{p2}): {ours} vs {paper}"
            );
        }
    }

    #[test]
    fn proposition_bounds_hold_for_independent_losses() {
        // Sweep asymmetric probability vectors; the window must sit inside
        // (eq1(p_max), sqrt(n)*eq1(p_max)).
        let cases: Vec<Vec<f64>> = vec![
            vec![0.02, 0.02],
            vec![0.04, 0.002],
            vec![0.03, 0.01, 0.001],
            vec![0.02; 10],
            vec![0.04, 0.04, 0.003, 0.002, 0.002],
        ];
        for p in cases {
            let n = p.len();
            let p_max = p.iter().cloned().fold(0.0, f64::max);
            let w = rla_window_independent(&p);
            let b = proposition_bounds(p_max, n);
            assert!(
                w > b.lower && w < b.upper,
                "p={p:?}: W={w} outside ({}, {})",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn proposition_bounds_hold_for_common_losses() {
        for &(p, n) in &[(0.01, 2), (0.02, 5), (0.04, 27)] {
            let w = rla_window_common(p, n);
            let b = proposition_bounds(p, n);
            assert!(
                w > b.lower && w < b.upper,
                "p={p}, n={n}: W={w} outside ({}, {})",
                b.lower,
                b.upper
            );
        }
    }

    #[test]
    fn lemma_correlation_increases_window() {
        // The Lemma of §4.2: at the same per-receiver congestion
        // probability, fully correlated losses yield a larger window than
        // independent losses.
        for &(p, n) in &[(0.01, 2), (0.02, 9), (0.03, 27)] {
            let independent = rla_window_independent(&vec![p; n]);
            let common = rla_window_common(p, n);
            assert!(
                common > independent,
                "p={p}, n={n}: common {common} must exceed independent {independent}"
            );
        }
    }

    #[test]
    fn eta_margin_matches_paper_argument() {
        // §4.2: for p1 < 5%, x = p2/p1 >= f(p1) = p1/(2 - 1.5 p1) suffices
        // for W̄² < 4(1-p1)/p1 (the n=2 upper bound). η = 20 enforces
        // x >= 0.05 > f(0.05) ≈ 0.026.
        let p1: f64 = 0.05;
        let f = p1 / (2.0 - 1.5 * p1);
        assert!(f < 0.05, "f(0.05) = {f} must be below 1/η = 0.05");
        // And the bound indeed holds at x = 0.05:
        let w2 = eq3_two_receivers(p1, 0.05 * p1).powi(2);
        assert!(w2 < 4.0 * (1.0 - p1) / p1);
    }

    #[test]
    fn monte_carlo_agrees_with_fixed_point() {
        let p = [0.02, 0.01];
        let analytic = rla_window_independent(&p);
        let sim = simulate_rla_window(&p, false, 2_000_000, 100_000, 3);
        let ratio = sim / analytic;
        assert!(
            (0.7..1.3).contains(&ratio),
            "simulated {sim} vs analytic {analytic}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one receiver must see losses")]
    fn all_zero_probabilities_rejected() {
        rla_window_independent(&[0.0, 0.0]);
    }
}
