//! # analysis — the paper's §4 mathematics, executable
//!
//! Closed forms, bounds and Monte-Carlo models from *Achieving Bounded
//! Fairness for Multicast and TCP Traffic in the Internet* (§4):
//!
//! * [`mod@pa_window`] — equation (1), the proportional-average TCP window
//!   `√(2(1−p))/√p`, with a Monte-Carlo twin of the window process.
//! * [`proposition`] — equation (3) and its n-receiver generalization,
//!   the Proposition's bounds (equation 2), the common-loss case, and the
//!   correlation Lemma.
//! * [`particle`] — §4.4's Markov particle model of two competing RLA
//!   sessions: the drift field of figure 4 and the stationary density of
//!   figure 5.
//! * [`fairness`] — essential/absolute fairness definitions, the
//!   soft-bottleneck selector, and Theorem I/II bound checks.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fairness;
pub mod pa_window;
pub mod particle;
pub mod proposition;

pub use fairness::{jain_index, soft_bottleneck, worst_pair_ratio, FairnessBounds, FairnessCheck};
pub use pa_window::{mahdavi_floyd_pps, pa_window, pa_window_approx, simulate_tcp_window};
pub use particle::{cut_distribution, drift_field, drift_x, simulate_particle, ParticleStats};
pub use proposition::{
    eq3_two_receivers, proposition_bounds, rla_window_common, rla_window_independent,
    simulate_rla_window, PropositionBounds,
};
