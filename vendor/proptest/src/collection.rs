//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use rand::rngs::StdRng;
use rand::Rng;

use crate::Strategy;

/// Strategy producing `Vec`s of values from an element strategy, with a
/// length drawn uniformly from a range. Built by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        let len = rng.gen_range(self.size.clone());
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }
}

/// A `Vec` of `size` elements drawn from `elem`.
pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range");
    VecStrategy { elem, size }
}
