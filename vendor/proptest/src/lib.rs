//! Offline stand-in for the `proptest` crate.
//!
//! Provides the subset of the property-testing API this workspace uses:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, [`Strategy`] implementations for integer and float
//! ranges, tuples, [`any`], and [`collection::vec`].
//!
//! Differences from the real crate, chosen deliberately for an offline,
//! deterministic test environment:
//!
//! * **No shrinking.** A failing case reports the exact generated inputs
//!   and the per-test deterministic seed instead; re-running reproduces
//!   the same case.
//! * **Deterministic by default.** Case `i` of test `t` is seeded from
//!   `hash(t, i)`, so failures are reproducible across runs and machines.
//!   Set `PROPTEST_SEED` to explore a different portion of the space.
//! * `.proptest-regressions` files are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

pub mod collection;

/// Everything tests import: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError, TestCaseResult, TestRunner,
    };
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// The inputs did not satisfy a `prop_assume!` precondition; the case
    /// is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failed property with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration. Only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives the generate/run loop for one property. Used by the
/// [`proptest!`] expansion; not normally constructed by hand.
#[derive(Debug)]
pub struct TestRunner {
    cases: u32,
    passed: u32,
    attempts: u64,
    rejects: u64,
    seed_base: u64,
}

impl TestRunner {
    /// A runner for the named property under `config`.
    pub fn new(config: ProptestConfig, name: &str) -> Self {
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        // FNV-1a over the test name decorrelates sibling properties.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            cases: config.cases,
            passed: 0,
            attempts: 0,
            rejects: 0,
            seed_base: h ^ env_seed,
        }
    }

    /// Next case's RNG, or `None` when enough cases have passed.
    pub fn next_case(&mut self) -> Option<StdRng> {
        if self.passed >= self.cases {
            return None;
        }
        let rng = StdRng::seed_from_u64(self.seed_base.wrapping_add(self.attempts));
        self.attempts += 1;
        Some(rng)
    }

    /// The seed of the most recently issued case (for failure reports).
    pub fn current_seed(&self) -> u64 {
        self.seed_base.wrapping_add(self.attempts.wrapping_sub(1))
    }

    /// Record a case outcome; panics with full diagnostics on failure.
    pub fn record(&mut self, outcome: TestCaseResult, inputs: &str) {
        match outcome {
            Ok(()) => self.passed += 1,
            Err(TestCaseError::Reject(why)) => {
                self.rejects += 1;
                let cap = 256 * self.cases.max(1) as u64;
                assert!(
                    self.rejects <= cap,
                    "too many prop_assume! rejections ({cap}); last: {why}"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "property failed: {msg}\n  inputs: {inputs}\n  case seed: {} \
                     (set PROPTEST_SEED to vary the explored space)",
                    self.current_seed()
                );
            }
        }
    }
}

/// A recipe for generating random values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value: Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy! {
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
}

/// Types with a canonical "any value" strategy ([`any`]).
pub trait Arbitrary: Debug + Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// Any value of `T`: `any::<bool>()`, `any::<u64>()`, …
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Assert a property inside a `proptest!` body; failure aborts the case
/// with the formatted message (no panic unwinding through generators).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `prop_assert!` for equality, with both operands in the report.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), l, r
        );
    }};
}

/// `prop_assert!` for inequality.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skip the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Define property tests: each `fn name(arg in strategy, …) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$attr:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            let mut runner = $crate::TestRunner::new(config, stringify!($name));
            while let Some(mut rng) = runner.next_case() {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    ::core::result::Result::Ok(())
                })();
                runner.record(outcome, &inputs);
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies stay inside their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u64..10, y in -5i32..5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        /// Vec strategies honour the size range and element strategy.
        #[test]
        fn vec_sizes(v in crate::collection::vec(0u8..4, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| b < 4));
        }

        /// Tuple strategies compose.
        #[test]
        fn tuples_compose(pair in (1u64..100, any::<bool>())) {
            let (n, _flag) = pair;
            prop_assert!((1..100).contains(&n));
        }

        /// prop_assume rejects without failing.
        #[test]
        fn assume_skips(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn failures_report_inputs() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #![proptest_config(ProptestConfig::with_cases(8))]
                #[test]
                fn always_fails(x in 0u32..10) {
                    prop_assert!(x > 100, "x was {}", x);
                }
            }
            always_fails();
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("x was"), "missing message: {msg}");
        assert!(msg.contains("inputs: x ="), "missing inputs: {msg}");
    }

    #[test]
    fn deterministic_across_runners() {
        let run = || {
            let mut runner = TestRunner::new(ProptestConfig::with_cases(5), "det");
            let mut vals = Vec::new();
            while let Some(mut rng) = runner.next_case() {
                vals.push(Strategy::generate(&(0u64..1_000_000), &mut rng));
                runner.record(Ok(()), "");
            }
            vals
        };
        assert_eq!(run(), run());
    }
}
