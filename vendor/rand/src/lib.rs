//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no crates.io access, so the
//! subset of the `rand 0.8` API the simulator actually uses is provided
//! here: the [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`],
//! uniform sampling over integer and float ranges, and the `Standard`
//! distribution behind [`Rng::gen`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — *not* the
//! ChaCha12 stream the real `StdRng` uses, but every property the
//! simulator relies on holds: a seed fully determines the stream, streams
//! from different seeds decorrelate, and sampling is unbiased to within
//! one part in 2⁶⁴. Determinism is per-seed and per-binary, which is all
//! the trace-digest regression layer requires.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Construct from a raw byte seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanded with SplitMix64 (mirrors the real
    /// crate's provided method).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = splitmix64(&mut sm).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64 step: the standard seed-expansion mix.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Types sampleable from the `Standard` distribution ([`Rng::gen`]).
pub trait Standard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit; xoshiro's low bits are its weakest.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Full 64-bit range: every word is a valid sample.
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128) * span) >> 64;
                (start as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// User-facing convenience methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample from the `Standard` distribution (`[0, 1)` for floats).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A biased coin flip: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generator types, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        let same = (0..100).all(|_| a.next_u64() == c.next_u64());
        assert!(!same, "different seeds must diverge");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let v = r.gen_range(5u64..=7);
            assert!((5..=7).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits} / 10000");
    }

    #[test]
    fn float_range_spans_negative_values() {
        let mut r = StdRng::seed_from_u64(4);
        for _ in 0..1000 {
            let x = r.gen_range(-1e6f64..1e6);
            assert!((-1e6..1e6).contains(&x));
        }
    }
}
