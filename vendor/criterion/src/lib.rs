//! Offline stand-in for the `criterion` crate.
//!
//! Supports the subset of the API the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`],
//! [`BenchmarkGroup::throughput`], [`BenchmarkGroup::sample_size`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`]/
//! [`criterion_main!`] macros.
//!
//! Statistics are deliberately simple: each benchmark runs one warmup
//! iteration, then `sample_size` timed iterations, and prints the mean
//! wall-clock time per iteration (plus derived throughput when
//! configured). There is no outlier analysis, HTML report, or saved
//! baseline — this exists so `cargo bench` works without crates.io.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

/// An opaque sink preventing the optimizer from deleting a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (packets, events, …) per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let mut g = self.benchmark_group("ungrouped");
        g.bench_function(name, f);
        g.finish();
        self
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed iterations per benchmark (min 1).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Configure derived throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            iterations: self.sample_size,
        };
        f(&mut b);
        let total: Duration = b.samples.iter().sum();
        let n = b.samples.len().max(1) as u32;
        let mean = total / n;
        let mut line = format!("  {}/{name}: {mean:?}/iter ({n} samples)", self.name);
        let secs = mean.as_secs_f64();
        if secs > 0.0 {
            match self.throughput {
                Some(Throughput::Elements(e)) => {
                    line.push_str(&format!(", {:.3} Melem/s", e as f64 / secs / 1e6));
                }
                Some(Throughput::Bytes(bytes)) => {
                    line.push_str(&format!(
                        ", {:.3} MiB/s",
                        bytes as f64 / secs / (1 << 20) as f64
                    ));
                }
                None => {}
            }
        }
        println!("{line}");
        self
    }

    /// End the group (matching the real API; prints nothing extra).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the measured routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    iterations: usize,
}

impl Bencher {
    /// Time `routine`, discarding one warmup call first.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Bundle benchmark functions into one runnable group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("t");
        g.sample_size(3);
        g.throughput(Throughput::Elements(10));
        let mut calls = 0u32;
        g.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                calls
            })
        });
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }
}
