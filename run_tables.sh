#!/bin/sh
# Sequential regeneration of all paper tables at a reduced duration
# (single-core machine). Results land in results/.
set -x
export RLA_DURATION_SECS=${RLA_DURATION_SECS:-300}
export RAYON_NUM_THREADS=1
cd /root/repo
cargo run --release -p experiments --bin fig7  > results/fig7.txt  2>results/fig7.log
cargo run --release -p experiments --bin fig8  > results/fig8.txt  2>results/fig8.log
cargo run --release -p experiments --bin fig9  > results/fig9.txt  2>results/fig9.log
cargo run --release -p experiments --bin fig10 > results/fig10.txt 2>results/fig10.log
cargo run --release -p experiments --bin sec52 > results/sec52.txt 2>results/sec52.log
cargo run --release -p experiments --bin theorem_check > results/theorem_check.txt 2>results/theorem_check.log
cargo run --release -p experiments --bin fig5  > results/fig5.txt  2>results/fig5.log
cargo run --release -p experiments --bin fig4  > results/fig4.txt  2>results/fig4.log
cargo run --release -p experiments --bin eq1   > results/eq1.txt   2>results/eq1.log
cargo run --release -p experiments --bin eq3   > results/eq3.txt   2>results/eq3.log
cargo run --release -p experiments --bin buffer_period > results/buffer_period.txt 2>results/buffer_period.log
cargo run --release -p experiments --bin phase_effect  > results/phase_effect.txt  2>results/phase_effect.log
cargo run --release -p experiments --bin baseline_cmp  > results/baseline_cmp.txt  2>results/baseline_cmp.log
cargo run --release -p experiments --bin bounds_sweep  > results/bounds_sweep.txt  2>results/bounds_sweep.log
cargo run --release -p experiments --bin ablation      > results/ablation.txt      2>results/ablation.log
echo ALL_TABLES_DONE
